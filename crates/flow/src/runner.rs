//! Demand-driven graph execution with content-hash caching.
//!
//! The runner makes three passes over a validated [`FlowGraph`]:
//!
//! 1. **Plan** (topological order): compute every node's [`CacheKey`]
//!    from its kind, params, run seed, precision label, and dependency
//!    keys — no node has to run for this — then probe the cache.
//! 2. **Demand** (reverse topological order): a node's *value* is needed
//!    if it is a sink (emits a file or prints) or feeds a node that will
//!    run. A node runs iff its value is needed and the cache did not
//!    return a payload. A [`CachePolicy::Stamp`] entry proves completion
//!    but holds no payload, so a stamped node re-runs ("refresh") only
//!    when a downstream consumer actually needs its output.
//! 3. **Execute** (waves of ready nodes): nodes marked
//!    [`NodeSpec::exclusive`] run serially in deterministic topological
//!    order (they mutate shared observability series); the rest of each
//!    wave runs through the `vaesa-par` pool. Executed nodes record a
//!    `flow/<id>` span; cache-served nodes record `flow-cache/<id>`
//!    instead so warm-run timings never pollute the per-stage trend
//!    history.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::{default_cache_root, CacheEntry, FlowCache};
use crate::graph::{CachePolicy, FlowGraph, NodeSpec};
use crate::key::{node_key, CacheKey};
use crate::value::Value;

/// Reads the process compute-precision label from `VAESA_PRECISION`
/// (anything but `f32` means `f64`, matching `vaesa-linalg`).
pub fn precision_label() -> String {
    match std::env::var("VAESA_PRECISION") {
        Ok(v) if v.eq_ignore_ascii_case("f32") => "f32".to_string(),
        _ => "f64".to_string(),
    }
}

/// Per-run settings shared by every node.
pub struct RunConfig {
    /// Global experiment seed, hashed into every node key.
    pub seed: u64,
    /// Compute-precision label (`f64`/`f32`), hashed into every node key.
    pub precision: String,
    /// Artifact cache root.
    pub cache_root: PathBuf,
    /// Directory sink nodes emit artifacts into.
    pub out_dir: PathBuf,
}

impl RunConfig {
    /// Standard config: given seed and output directory, precision from
    /// the environment, cache at [`default_cache_root`].
    pub fn new(seed: u64, out_dir: impl Into<PathBuf>) -> Self {
        RunConfig {
            seed,
            precision: precision_label(),
            cache_root: default_cache_root(),
            out_dir: out_dir.into(),
        }
    }
}

/// How one node was handled during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Ran because no cache entry existed.
    Executed,
    /// Served from the cache (persisted payload or un-refreshed stamp).
    CacheHit,
    /// Had a stamp entry but re-ran because a downstream consumer needed
    /// its in-memory output.
    Refreshed,
    /// Not run at all: no cache entry, but no downstream consumer needed
    /// its value either.
    Skipped,
}

/// Outcome of one node within a [`FlowReport`].
#[derive(Debug)]
pub struct NodeReport {
    /// Node id.
    pub id: String,
    /// Stage kind label.
    pub kind: String,
    /// Content-hash key.
    pub key: CacheKey,
    /// How the node was handled.
    pub status: NodeStatus,
    /// Wall time spent executing (0 unless `Executed`/`Refreshed`).
    pub wall_ns: u64,
}

/// Outcome of a whole pipeline run.
#[derive(Debug)]
pub struct FlowReport {
    /// Per-node outcomes, in declaration order.
    pub nodes: Vec<NodeReport>,
    outputs: Vec<Option<Arc<Value>>>,
    index: std::collections::HashMap<String, usize>,
}

impl FlowReport {
    /// Nodes served from cache (including un-refreshed stamps).
    pub fn hits(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.status == NodeStatus::CacheHit)
            .count()
    }

    /// Nodes that ran because nothing was cached.
    pub fn executed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.status == NodeStatus::Executed)
            .count()
    }

    /// Stamped nodes that re-ran for a downstream consumer.
    pub fn refreshed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.status == NodeStatus::Refreshed)
            .count()
    }

    /// Nodes skipped entirely.
    pub fn skipped(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.status == NodeStatus::Skipped)
            .count()
    }

    /// The status of a node by id.
    pub fn status_of(&self, id: &str) -> Option<NodeStatus> {
        self.index.get(id).map(|&i| self.nodes[i].status)
    }

    /// The output value of a node by id (`None` for skipped nodes).
    pub fn output(&self, id: &str) -> Option<Arc<Value>> {
        self.index.get(id).and_then(|&i| self.outputs[i].clone())
    }

    /// One-line summary, e.g. `7 executed, 3 cached, 0 refreshed, 2 skipped`.
    pub fn summary(&self) -> String {
        format!(
            "{} executed, {} cached, {} refreshed, {} skipped",
            self.executed(),
            self.hits(),
            self.refreshed(),
            self.skipped()
        )
    }
}

/// Executes a [`FlowGraph`] under a [`RunConfig`].
pub struct FlowRunner {
    graph: FlowGraph,
    config: RunConfig,
}

impl FlowRunner {
    /// Pairs a graph with its run settings.
    pub fn new(graph: FlowGraph, config: RunConfig) -> Self {
        FlowRunner { graph, config }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &FlowGraph {
        &self.graph
    }

    /// Every node's content-hash key under this config, in declaration
    /// order, computed without running anything.
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors (cycles).
    pub fn keys(&self) -> Result<Vec<(String, CacheKey)>, String> {
        let keys = self.compute_keys()?;
        Ok(self
            .graph
            .nodes()
            .iter()
            .zip(&keys)
            .map(|(n, &k)| (n.id.clone(), k))
            .collect())
    }

    fn compute_keys(&self) -> Result<Vec<CacheKey>, String> {
        let nodes = self.graph.nodes();
        let order = self.graph.topo_order()?;
        let mut keys: Vec<Option<CacheKey>> = vec![None; nodes.len()];
        for i in order {
            let node = &nodes[i];
            let dep_keys: Vec<CacheKey> = node
                .deps
                .iter()
                .map(|d| keys[self.graph.index_of(d).expect("validated dep")].expect("topo order"))
                .collect();
            keys[i] = Some(node_key(
                &node.kind.label(),
                &node.params,
                node.emit.as_deref(),
                self.config.seed,
                &self.config.precision,
                &dep_keys,
            ));
        }
        Ok(keys.into_iter().map(|k| k.expect("all keyed")).collect())
    }

    /// Runs the pipeline: plan, demand, execute, publish observability.
    ///
    /// # Errors
    ///
    /// Returns the first node failure (prefixed with the node id), or any
    /// cache/emit I/O error.
    pub fn run(&self) -> Result<FlowReport, String> {
        let nodes = self.graph.nodes();
        let n = nodes.len();
        let order = self.graph.topo_order()?;
        let keys = self.compute_keys()?;
        let cache = FlowCache::new(&self.config.cache_root);

        // Plan: probe the cache for every node.
        let mut entries: Vec<CacheEntry> = Vec::with_capacity(n);
        for (i, node) in nodes.iter().enumerate() {
            let entry = match node.policy {
                CachePolicy::Never => CacheEntry::Miss,
                _ => cache.lookup(keys[i]),
            };
            entries.push(entry);
        }

        // Demand: reverse topological pass. `will_run[i]` means node i's
        // closure executes this run.
        let mut value_needed = vec![false; n];
        let mut will_run = vec![false; n];
        for &i in order.iter().rev() {
            let node = &nodes[i];
            let is_sink = node.emit.is_some() || node.print;
            let needed = value_needed[i] || is_sink;
            will_run[i] = needed && !matches!(entries[i], CacheEntry::Hit(_));
            if will_run[i] {
                for d in &node.deps {
                    value_needed[self.graph.index_of(d).expect("validated dep")] = true;
                }
            }
        }

        // Seed outputs with cached payloads and classify every node.
        let mut outputs: Vec<Option<Arc<Value>>> = vec![None; n];
        let mut status: Vec<NodeStatus> = Vec::with_capacity(n);
        for i in 0..n {
            let s = match (&entries[i], will_run[i]) {
                (CacheEntry::Hit(_), _) => NodeStatus::CacheHit,
                (CacheEntry::Stamp, true) => NodeStatus::Refreshed,
                (CacheEntry::Stamp, false) => NodeStatus::CacheHit,
                (CacheEntry::Miss, true) => NodeStatus::Executed,
                (CacheEntry::Miss, false) => NodeStatus::Skipped,
            };
            status.push(s);
        }
        for (i, entry) in entries.into_iter().enumerate() {
            if let CacheEntry::Hit(value) = entry {
                outputs[i] = Some(Arc::new(value));
            }
        }

        // Execute in waves of ready nodes.
        let mut wall_ns = vec![0u64; n];
        let mut done: Vec<bool> = (0..n).map(|i| !will_run[i]).collect();
        let mut remaining = done.iter().filter(|&&d| !d).count();
        while remaining > 0 {
            let ready: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| {
                    !done[i]
                        && nodes[i].deps.iter().all(|d| {
                            let di = self.graph.index_of(d).expect("validated dep");
                            done[di] || outputs[di].is_some()
                        })
                })
                .collect();
            if ready.is_empty() {
                return Err(
                    "scheduler stalled: no runnable node (unrefreshable dependency?)".to_string(),
                );
            }
            let (serial, parallel): (Vec<usize>, Vec<usize>) =
                ready.iter().partition(|&&i| nodes[i].exclusive);
            for &i in &serial {
                let (value, ns) = self.execute(&nodes[i], &outputs)?;
                outputs[i] = Some(Arc::new(value));
                wall_ns[i] = ns;
            }
            if !parallel.is_empty() {
                let results = vaesa_par::par_map(&parallel, |&i| self.execute(&nodes[i], &outputs));
                for (&i, result) in parallel.iter().zip(results) {
                    let (value, ns) = result?;
                    outputs[i] = Some(Arc::new(value));
                    wall_ns[i] = ns;
                }
            }
            for &i in serial.iter().chain(&parallel) {
                done[i] = true;
                remaining -= 1;
                match nodes[i].policy {
                    CachePolicy::Persist => {
                        let value = outputs[i].as_ref().expect("just executed");
                        if value.is_persistable() {
                            cache.store(keys[i], &nodes[i].id, &nodes[i].kind.label(), value)?;
                        } else {
                            cache.stamp(keys[i], &nodes[i].id, &nodes[i].kind.label())?;
                        }
                    }
                    CachePolicy::Stamp => {
                        cache.stamp(keys[i], &nodes[i].id, &nodes[i].kind.label())?;
                    }
                    CachePolicy::Never => {}
                }
            }
        }

        // Materialize sinks served from cache, and always honor `print`
        // so warm runs show the same report text as cold ones.
        for i in 0..n {
            let node = &nodes[i];
            if !will_run[i] && (node.emit.is_some() || node.print) {
                let start = Instant::now();
                let value = outputs[i].as_ref().expect("hit sinks have payloads");
                self.sink(node, value)?;
                vaesa_obs::global().record_span(
                    &format!("flow-cache/{}", node.id),
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    0,
                );
            } else if will_run[i] {
                let value = outputs[i].as_ref().expect("executed");
                self.sink(node, value)?;
            }
        }

        // Observability: cache counters and the node-count gauge.
        let hits = status
            .iter()
            .filter(|&&s| s == NodeStatus::CacheHit)
            .count();
        let misses = status
            .iter()
            .filter(|&&s| matches!(s, NodeStatus::Executed | NodeStatus::Skipped))
            .count();
        let refreshes = status
            .iter()
            .filter(|&&s| s == NodeStatus::Refreshed)
            .count();
        vaesa_obs::counter("flow.cache.hits").add(hits as u64);
        vaesa_obs::counter("flow.cache.misses").add(misses as u64);
        vaesa_obs::counter("flow.cache.refreshes").add(refreshes as u64);
        vaesa_obs::gauge("flow.nodes").set(n as f64);

        let reports = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| NodeReport {
                id: node.id.clone(),
                kind: node.kind.label(),
                key: keys[i],
                status: status[i],
                wall_ns: wall_ns[i],
            })
            .collect();
        let index = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node.id.clone(), i))
            .collect();
        Ok(FlowReport {
            nodes: reports,
            outputs,
            index,
        })
    }

    fn execute(
        &self,
        node: &NodeSpec,
        outputs: &[Option<Arc<Value>>],
    ) -> Result<(Value, u64), String> {
        let inputs: Vec<Arc<Value>> = node
            .deps
            .iter()
            .map(|d| {
                outputs[self.graph.index_of(d).expect("validated dep")]
                    .clone()
                    .expect("dependency value available")
            })
            .collect();
        let start = Instant::now();
        let span = vaesa_obs::span(&format!("flow/{}", node.id));
        let result = (node.run)(&inputs);
        span.finish();
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let value = result.map_err(|e| format!("node '{}': {e}", node.id))?;
        Ok((value, ns))
    }

    /// Writes/prints a sink node's string payload.
    fn sink(&self, node: &NodeSpec, value: &Value) -> Result<(), String> {
        if node.emit.is_none() && !node.print {
            return Ok(());
        }
        let text = value
            .as_str()
            .ok_or_else(|| format!("sink node '{}' produced a non-string value", node.id))?;
        if let Some(rel) = &node.emit {
            let path = self.config.out_dir.join(rel);
            write_text(&path, text)?;
            vaesa_obs::progress!("wrote {}", path.display());
        }
        if node.print {
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
        }
        Ok(())
    }
}

/// Writes text to `path`, creating parent directories as needed — the
/// single artifact-writing primitive every pipeline shares.
pub fn write_text(path: &Path, text: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StageKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vaesa-flow-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> RunConfig {
        let base = temp_dir(tag);
        RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        }
    }

    /// dataset (stamp, mem) → search (persist) → csv sink (persist).
    fn pipeline(counter: Arc<AtomicUsize>, csv_param: &str, budget: usize) -> FlowGraph {
        let c1 = Arc::clone(&counter);
        let c2 = Arc::clone(&counter);
        let c3 = Arc::clone(&counter);
        FlowGraph::new(vec![
            NodeSpec::new("dataset", StageKind::Dataset)
                .policy(CachePolicy::Stamp)
                .runs(move |_| {
                    c1.fetch_add(1, Ordering::SeqCst);
                    Ok(Value::mem(vec![1.0f64, 2.0]))
                }),
            NodeSpec::new("search", StageKind::Engine("bo".into()))
                .dep("dataset")
                .param("budget", budget)
                .runs(move |deps| {
                    c2.fetch_add(1, Ordering::SeqCst);
                    let data = deps[0].as_mem::<Vec<f64>>().ok_or("no dataset")?;
                    Ok(Value::floats(data.iter().map(|v| v * 2.0)))
                }),
            NodeSpec::new("csv", StageKind::Csv)
                .dep("search")
                .param("style", csv_param)
                .emit("out.csv")
                .runs(move |deps| {
                    c3.fetch_add(1, Ordering::SeqCst);
                    let vals = deps[0].to_floats().ok_or("no search output")?;
                    let rows: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
                    Ok(Value::Str(format!("x\n{}\n", rows.join("\n"))))
                }),
        ])
        .unwrap()
    }

    #[test]
    fn cold_run_executes_everything_and_warm_run_hits_everything() {
        let cfg = config("warm");
        let count = Arc::new(AtomicUsize::new(0));
        let report = FlowRunner::new(pipeline(Arc::clone(&count), "a", 4), cfg)
            .run()
            .unwrap();
        assert_eq!(report.executed(), 3);
        assert_eq!(count.load(Ordering::SeqCst), 3);

        // Second run: same spec, fresh runner — everything served from
        // cache, nothing executes, artifact re-materialized identically.
        let base = std::env::temp_dir().join(format!("vaesa-flow-run-warm-{}", std::process::id()));
        let cfg2 = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out2"),
        };
        let count2 = Arc::new(AtomicUsize::new(0));
        let report2 = FlowRunner::new(pipeline(Arc::clone(&count2), "a", 4), cfg2)
            .run()
            .unwrap();
        assert_eq!(
            count2.load(Ordering::SeqCst),
            0,
            "warm run must execute nothing"
        );
        assert_eq!(report2.hits(), 3);
        assert_eq!(
            report2.executed() + report2.refreshed() + report2.skipped(),
            0
        );
        let a = std::fs::read(base.join("out").join("out.csv")).unwrap();
        let b = std::fs::read(base.join("out2").join("out.csv")).unwrap();
        assert_eq!(a, b, "materialized artifact must be byte-identical");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn render_only_change_reexecutes_render_only() {
        let cfg = config("renderonly");
        let base =
            std::env::temp_dir().join(format!("vaesa-flow-run-renderonly-{}", std::process::id()));
        let count = Arc::new(AtomicUsize::new(0));
        FlowRunner::new(pipeline(Arc::clone(&count), "a", 4), cfg)
            .run()
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 3);

        // Change only the sink's param: the sink misses and needs the
        // search value, which is persisted — so the dataset and search
        // nodes are served from cache and only the sink executes.
        let cfg2 = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        };
        let count2 = Arc::new(AtomicUsize::new(0));
        let report = FlowRunner::new(pipeline(Arc::clone(&count2), "b", 4), cfg2)
            .run()
            .unwrap();
        assert_eq!(count2.load(Ordering::SeqCst), 1, "only the sink node runs");
        assert_eq!(report.status_of("csv"), Some(NodeStatus::Executed));
        assert_eq!(report.status_of("search"), Some(NodeStatus::CacheHit));
        assert_eq!(report.status_of("dataset"), Some(NodeStatus::CacheHit));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn stamped_dependency_refreshes_when_downstream_misses() {
        let cfg = config("refresh");
        let base =
            std::env::temp_dir().join(format!("vaesa-flow-run-refresh-{}", std::process::id()));
        let count = Arc::new(AtomicUsize::new(0));
        FlowRunner::new(pipeline(Arc::clone(&count), "a", 4), cfg)
            .run()
            .unwrap();

        // Change the *search* param: search (and the csv downstream of it)
        // miss, search needs the dataset, whose entry is only a stamp —
        // the dataset must refresh.
        let count2 = Arc::new(AtomicUsize::new(0));
        let cfg2 = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        };
        let report = FlowRunner::new(pipeline(Arc::clone(&count2), "a", 5), cfg2)
            .run()
            .unwrap();
        assert_eq!(report.status_of("dataset"), Some(NodeStatus::Refreshed));
        assert_eq!(report.status_of("search"), Some(NodeStatus::Executed));
        assert_eq!(report.status_of("csv"), Some(NodeStatus::Executed));
        assert_eq!(count2.load(Ordering::SeqCst), 3);
        assert_eq!(
            report.output("search").unwrap().to_floats().unwrap(),
            vec![2.0, 4.0]
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn unneeded_miss_is_skipped() {
        // a (persist) feeds sink; b (persist) feeds nothing → b is never
        // demanded, so its miss is a skip on every run; once the sink is
        // cached, a is not demanded either and is served from cache.
        let build = || {
            FlowGraph::new(vec![
                NodeSpec::new("a", StageKind::Dataset)
                    .param("role", "a")
                    .runs(|_| Ok(Value::Int(1))),
                NodeSpec::new("b", StageKind::Dataset)
                    .param("role", "b")
                    .runs(|_| Ok(Value::Int(2))),
                NodeSpec::new("sink", StageKind::Report)
                    .dep("a")
                    .runs(|_| Ok(Value::Str("ok\n".into())))
                    .emit("r.txt"),
            ])
            .unwrap()
        };
        let cfg = config("skip");
        let base = std::env::temp_dir().join(format!("vaesa-flow-run-skip-{}", std::process::id()));
        let first = FlowRunner::new(build(), cfg).run().unwrap();
        assert_eq!(first.status_of("b"), Some(NodeStatus::Skipped));
        let cfg2 = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        };
        let report = FlowRunner::new(build(), cfg2).run().unwrap();
        assert_eq!(report.status_of("sink"), Some(NodeStatus::CacheHit));
        assert_eq!(report.status_of("a"), Some(NodeStatus::CacheHit));
        assert_eq!(report.status_of("b"), Some(NodeStatus::Skipped));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn keys_are_stable_and_param_sensitive_via_runner() {
        let mk = |csv: &str| {
            FlowRunner::new(
                pipeline(Arc::new(AtomicUsize::new(0)), csv, 4),
                RunConfig {
                    seed: 7,
                    precision: "f64".to_string(),
                    cache_root: PathBuf::from("unused"),
                    out_dir: PathBuf::from("unused"),
                },
            )
        };
        let k1 = mk("a").keys().unwrap();
        let k2 = mk("a").keys().unwrap();
        assert_eq!(k1, k2, "same spec+seed+precision ⇒ identical keys");
        let k3 = mk("b").keys().unwrap();
        assert_eq!(k1[0].1, k3[0].1, "upstream keys unaffected by sink param");
        assert_ne!(k1[2].1, k3[2].1, "sink param changes sink key");
        let k4 = FlowRunner::new(
            pipeline(Arc::new(AtomicUsize::new(0)), "a", 4),
            RunConfig {
                seed: 7,
                precision: "f32".to_string(),
                cache_root: PathBuf::from("unused"),
                out_dir: PathBuf::from("unused"),
            },
        )
        .keys()
        .unwrap();
        assert_ne!(k1[0].1, k4[0].1, "precision perturbs every key");
        assert_ne!(k1[2].1, k4[2].1);
    }

    #[test]
    fn node_error_names_the_node() {
        let graph = FlowGraph::new(vec![NodeSpec::new("boom", StageKind::Report)
            .print()
            .policy(CachePolicy::Never)
            .runs(|_| Err("kaput".to_string()))])
        .unwrap();
        let err = FlowRunner::new(graph, config("err")).run().unwrap_err();
        assert!(err.contains("boom") && err.contains("kaput"), "{err}");
    }

    #[test]
    fn non_persistable_persist_output_degrades_to_stamp() {
        let base = temp_dir("degrade");
        let mk = |n: Arc<AtomicUsize>| {
            FlowGraph::new(vec![
                NodeSpec::new("model", StageKind::Train).runs(move |_| {
                    n.fetch_add(1, Ordering::SeqCst);
                    Ok(Value::mem(3usize))
                }),
                NodeSpec::new("use", StageKind::Report)
                    .dep("model")
                    .print()
                    .runs(|deps| {
                        let v = deps[0].as_mem::<usize>().ok_or("no model")?;
                        Ok(Value::Str(format!("{v}\n")))
                    }),
            ])
            .unwrap()
        };
        let cfg = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        };
        let n1 = Arc::new(AtomicUsize::new(0));
        FlowRunner::new(mk(Arc::clone(&n1)), cfg).run().unwrap();
        assert_eq!(n1.load(Ordering::SeqCst), 1);
        // Warm run: the report sink is a Hit; the mem-valued train node's
        // stamp is honored, so nothing re-executes.
        let cfg2 = RunConfig {
            seed: 1,
            precision: "f64".to_string(),
            cache_root: base.join("cache"),
            out_dir: base.join("out"),
        };
        let n2 = Arc::new(AtomicUsize::new(0));
        let report = FlowRunner::new(mk(Arc::clone(&n2)), cfg2).run().unwrap();
        assert_eq!(n2.load(Ordering::SeqCst), 0);
        assert_eq!(report.hits(), 2);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn write_text_creates_parents() {
        let base = temp_dir("writetext");
        let path = base.join("a").join("b").join("x.txt");
        write_text(&path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn exclusive_nodes_run_in_topo_order() {
        // Three independent exclusive nodes must append in declaration
        // (== topo) order even when a parallel pool is available.
        let log: Arc<std::sync::Mutex<Vec<&'static str>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let mk = |name: &'static str, log: Arc<std::sync::Mutex<Vec<&'static str>>>| {
            NodeSpec::new(name, StageKind::Engine("x".into()))
                .policy(CachePolicy::Never)
                .exclusive()
                .print()
                .runs(move |_| {
                    log.lock().unwrap().push(name);
                    Ok(Value::Str(String::new()))
                })
        };
        let graph = FlowGraph::new(vec![
            mk("s1", Arc::clone(&log)),
            mk("s2", Arc::clone(&log)),
            mk("s3", Arc::clone(&log)),
        ])
        .unwrap();
        FlowRunner::new(graph, config("excl")).run().unwrap();
        assert_eq!(*log.lock().unwrap(), vec!["s1", "s2", "s3"]);
    }
}
