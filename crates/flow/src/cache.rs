//! On-disk artifact cache.
//!
//! Every node output lives in its own directory named by the node's
//! 32-hex-char content hash: `<root>/<key>/meta` records provenance
//! (node id, stage kind, schema) and `<root>/<key>/value.bin` holds the
//! encoded [`Value`] for `Persist` entries. `Stamp` entries write only the
//! `meta` marker — they prove the stage ran for this exact key without
//! storing an unserializable payload (models, datasets). Writes go through
//! a temp directory renamed into place, so a crashed run never leaves a
//! half-written entry that a later run would trust.

use std::fs;
use std::path::{Path, PathBuf};

use crate::key::CacheKey;
use crate::value::Value;

/// Environment variable overriding the cache root directory.
pub const CACHE_ROOT_ENV: &str = "VAESA_FLOW_CACHE";

/// Default cache location relative to the working directory.
pub const DEFAULT_CACHE_ROOT: &str = "results/cache/flow";

/// Resolves the cache root: `$VAESA_FLOW_CACHE` if set and non-empty,
/// else [`DEFAULT_CACHE_ROOT`].
pub fn default_cache_root() -> PathBuf {
    match std::env::var(CACHE_ROOT_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_CACHE_ROOT),
    }
}

/// What a cache probe found for a key.
#[derive(Debug, PartialEq)]
pub enum CacheEntry {
    /// No entry on disk.
    Miss,
    /// A stamp marker: the stage completed for this key, but its payload
    /// was in-memory-only and must be recomputed if a consumer needs it.
    Stamp,
    /// A persisted payload, decoded.
    Hit(Value),
}

/// A content-addressed artifact store rooted at one directory.
pub struct FlowCache {
    root: PathBuf,
}

impl FlowCache {
    /// Opens (without creating) a cache at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FlowCache { root: root.into() }
    }

    /// Opens the default cache ([`default_cache_root`]).
    pub fn open_default() -> Self {
        Self::new(default_cache_root())
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_dir(&self, key: CacheKey) -> PathBuf {
        self.root.join(key.hex())
    }

    /// Looks up a key. Corrupt entries (unreadable or undecodable
    /// `value.bin`) are treated as misses rather than errors so a damaged
    /// cache degrades to recomputation.
    pub fn lookup(&self, key: CacheKey) -> CacheEntry {
        let dir = self.entry_dir(key);
        if !dir.join("meta").is_file() {
            return CacheEntry::Miss;
        }
        let payload = dir.join("value.bin");
        if !payload.is_file() {
            return CacheEntry::Stamp;
        }
        match fs::read(&payload).ok().and_then(|b| Value::decode(&b).ok()) {
            Some(value) => CacheEntry::Hit(value),
            None => CacheEntry::Miss,
        }
    }

    fn write_entry(
        &self,
        key: CacheKey,
        node_id: &str,
        kind: &str,
        payload: Option<&Value>,
    ) -> Result<(), String> {
        let dir = self.entry_dir(key);
        if dir.exists() {
            return Ok(());
        }
        let encoded = match payload {
            Some(value) => Some(value.encode()?),
            None => None,
        };
        fs::create_dir_all(&self.root)
            .map_err(|e| format!("create cache root {}: {e}", self.root.display()))?;
        // Stage into a sibling temp dir, then rename into place. The rename
        // is atomic on POSIX; a concurrent writer racing us produced the
        // same content for the same key, so losing the race is fine.
        let tmp = self
            .root
            .join(format!(".tmp-{}-{}", key.hex(), std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        let meta = format!("node = {node_id}\nkind = {kind}\nkey = {key}\n");
        fs::write(tmp.join("meta"), meta).map_err(|e| format!("write meta: {e}"))?;
        if let Some(bytes) = encoded {
            fs::write(tmp.join("value.bin"), bytes).map_err(|e| format!("write value.bin: {e}"))?;
        }
        match fs::rename(&tmp, &dir) {
            Ok(()) => Ok(()),
            Err(_) if dir.exists() => {
                let _ = fs::remove_dir_all(&tmp);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_dir_all(&tmp);
                Err(format!("install cache entry {key}: {e}"))
            }
        }
    }

    /// Persists a node's payload under its key.
    ///
    /// # Errors
    ///
    /// Fails if the payload contains in-memory values or on I/O errors.
    pub fn store(
        &self,
        key: CacheKey,
        node_id: &str,
        kind: &str,
        value: &Value,
    ) -> Result<(), String> {
        self.write_entry(key, node_id, kind, Some(value))
    }

    /// Records a stamp marker (completion proof without payload).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn stamp(&self, key: CacheKey, node_id: &str, kind: &str) -> Result<(), String> {
        self.write_entry(key, node_id, kind, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::node_key;
    use std::collections::BTreeMap;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vaesa-flow-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CacheKey {
        node_key("test", &BTreeMap::new(), None, n, "f64", &[])
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let root = temp_root("roundtrip");
        let cache = FlowCache::new(&root);
        let k = key(1);
        assert_eq!(cache.lookup(k), CacheEntry::Miss);
        let v = Value::floats([1.0, 2.5, -0.0]);
        cache.store(k, "fig/test", "csv", &v).unwrap();
        assert_eq!(cache.lookup(k), CacheEntry::Hit(v));
        // Storing again over an existing entry is a no-op, not an error.
        cache.store(k, "fig/test", "csv", &Value::Unit).unwrap();
        assert_eq!(
            cache.lookup(k),
            CacheEntry::Hit(Value::floats([1.0, 2.5, -0.0]))
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stamps_record_completion_without_payload() {
        let root = temp_root("stamp");
        let cache = FlowCache::new(&root);
        let k = key(2);
        cache.stamp(k, "fig/train", "train").unwrap();
        assert_eq!(cache.lookup(k), CacheEntry::Stamp);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_payload_degrades_to_miss() {
        let root = temp_root("corrupt");
        let cache = FlowCache::new(&root);
        let k = key(3);
        cache.store(k, "n", "csv", &Value::Int(9)).unwrap();
        fs::write(root.join(k.hex()).join("value.bin"), [0xFFu8, 0x01]).unwrap();
        assert_eq!(cache.lookup(k), CacheEntry::Miss);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mem_payloads_are_rejected() {
        let root = temp_root("mem");
        let cache = FlowCache::new(&root);
        assert!(cache
            .store(key(4), "n", "train", &Value::mem(1usize))
            .is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
