//! The typed node graph.
//!
//! A [`FlowGraph`] is a DAG of named [`NodeSpec`]s. Each node declares a
//! [`StageKind`], a parameter map (part of its cache key), its
//! dependencies by node id, a [`CachePolicy`], optional sink behavior
//! (emit its string payload to a file under the run's output directory,
//! and/or print it to stdout), and a closure that computes its output
//! from its dependencies' outputs.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::value::Value;

/// What kind of work a node performs. The kind's label is hashed into the
/// cache key and shown in graph renderings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageKind {
    /// Builds a labeled dataset.
    Dataset,
    /// Trains a model.
    Train,
    /// Runs a search engine (`engine:<name>`).
    Engine(String),
    /// Renders an SVG chart.
    Render,
    /// Formats a CSV artifact.
    Csv,
    /// Produces a textual report/summary.
    Report,
    /// Anything else (`custom:<name>`).
    Custom(String),
}

impl StageKind {
    /// The label hashed into cache keys and shown in graph renderings.
    pub fn label(&self) -> String {
        match self {
            StageKind::Dataset => "dataset".to_string(),
            StageKind::Train => "train".to_string(),
            StageKind::Engine(name) => format!("engine:{name}"),
            StageKind::Render => "render".to_string(),
            StageKind::Csv => "csv".to_string(),
            StageKind::Report => "report".to_string(),
            StageKind::Custom(name) => format!("custom:{name}"),
        }
    }
}

/// How a node's output interacts with the artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Encode the output and persist it under the node's key.
    Persist,
    /// Record only a completion marker; the payload is in-memory-only
    /// (models, datasets) and is recomputed when a consumer needs it.
    Stamp,
    /// Never touch the cache (trivially cheap nodes).
    Never,
}

/// The closure type computing a node's output from its dependency outputs
/// (in declared dependency order).
pub type NodeFn = dyn Fn(&[Arc<Value>]) -> Result<Value, String> + Send + Sync;

/// One stage in a pipeline.
pub struct NodeSpec {
    /// Unique node id within the graph (also the span suffix:
    /// `flow/<id>`).
    pub id: String,
    /// Stage kind.
    pub kind: StageKind,
    /// Key-affecting parameters.
    pub params: BTreeMap<String, String>,
    /// Dependency node ids, in the order their outputs are passed to
    /// `run`.
    pub deps: Vec<String>,
    /// Cache behavior.
    pub policy: CachePolicy,
    /// When set, the node's `Str` output is written to this path relative
    /// to the run's output directory.
    pub emit: Option<String>,
    /// When true, the node's `Str` output is printed to stdout.
    pub print: bool,
    /// When true, the node mutates shared observability state (e.g.
    /// publishes `dse.*`/`train.*` series) and must run serially in
    /// declaration order; non-exclusive nodes may run in parallel.
    pub exclusive: bool,
    /// The work.
    pub run: Box<NodeFn>,
}

impl NodeSpec {
    /// Starts a node with the given id and kind; everything else defaults
    /// (no params, no deps, `Persist`, not a sink, parallel-safe).
    pub fn new(id: impl Into<String>, kind: StageKind) -> Self {
        NodeSpec {
            id: id.into(),
            kind,
            params: BTreeMap::new(),
            deps: Vec::new(),
            policy: CachePolicy::Persist,
            emit: None,
            print: false,
            exclusive: false,
            run: Box::new(|_| Ok(Value::Unit)),
        }
    }

    /// Adds a key-affecting parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.insert(key.into(), value.to_string());
        self
    }

    /// Adds a dependency by node id.
    pub fn dep(mut self, id: impl Into<String>) -> Self {
        self.deps.push(id.into());
        self
    }

    /// Adds several dependencies.
    pub fn deps(mut self, ids: impl IntoIterator<Item = String>) -> Self {
        self.deps.extend(ids);
        self
    }

    /// Sets the cache policy.
    pub fn policy(mut self, policy: CachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Marks the node's `Str` output for writing to `path` (relative to
    /// the run's output directory).
    pub fn emit(mut self, path: impl Into<String>) -> Self {
        self.emit = Some(path.into());
        self
    }

    /// Marks the node's `Str` output for printing to stdout.
    pub fn print(mut self) -> Self {
        self.print = true;
        self
    }

    /// Marks the node as requiring serial execution (it mutates shared
    /// observability state).
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Sets the node's work closure.
    pub fn runs(
        mut self,
        f: impl Fn(&[Arc<Value>]) -> Result<Value, String> + Send + Sync + 'static,
    ) -> Self {
        self.run = Box::new(f);
        self
    }
}

/// A validated pipeline DAG.
pub struct FlowGraph {
    nodes: Vec<NodeSpec>,
    index: HashMap<String, usize>,
}

impl std::fmt::Debug for FlowGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.nodes.iter().map(|n| (&n.id, n.kind.label(), &n.deps)))
            .finish()
    }
}

impl FlowGraph {
    /// Builds and validates a graph: node ids must be unique, every
    /// dependency must name an existing node, and the graph must be
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns a message naming the duplicate id, the missing dependency,
    /// or a node on a cycle.
    pub fn new(nodes: Vec<NodeSpec>) -> Result<Self, String> {
        let mut index = HashMap::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if index.insert(node.id.clone(), i).is_some() {
                return Err(format!("duplicate node id '{}'", node.id));
            }
        }
        for node in &nodes {
            for dep in &node.deps {
                if !index.contains_key(dep) {
                    return Err(format!(
                        "node '{}' depends on unknown node '{dep}'",
                        node.id
                    ));
                }
            }
        }
        let graph = FlowGraph { nodes, index };
        graph.topo_order()?;
        Ok(graph)
    }

    /// The nodes in declaration order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Index of a node by id.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// A topological order over node indices. Ties are broken by
    /// declaration order, so the result is deterministic.
    ///
    /// # Errors
    ///
    /// Returns a message naming a node on a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, String> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            // A node listing the same dependency twice consumes its output
            // twice but contributes one edge.
            let unique: HashSet<usize> = node.deps.iter().map(|d| self.index[d]).collect();
            indegree[i] = unique.len();
            for d in unique {
                dependents[d].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        // `ready` is kept sorted; popping the smallest index keeps the
        // order stable under node reordering of independent stages.
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            for &dep in &dependents[next] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    let pos = ready.partition_point(|&r| r < dep);
                    ready.insert(pos, dep);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| self.nodes[i].id.clone())
                .unwrap_or_default();
            return Err(format!("dependency cycle involving node '{stuck}'"));
        }
        Ok(order)
    }

    /// Renders the graph as Graphviz DOT.
    pub fn dot(&self, name: &str) -> String {
        let mut out = format!(
            "digraph \"{name}\" {{\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n"
        );
        for node in &self.nodes {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n[{}]\"];\n",
                node.id,
                node.id,
                node.kind.label()
            ));
        }
        for node in &self.nodes {
            for dep in &node.deps {
                out.push_str(&format!("  \"{dep}\" -> \"{}\";\n", node.id));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph as a mermaid `graph LR` diagram.
    pub fn mermaid(&self, name: &str) -> String {
        // Mermaid node ids must be bare words; map ids to n0, n1, ...
        let mut out = format!("---\ntitle: {name}\n---\ngraph LR\n");
        for (i, node) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "  n{i}[\"{} [{}]\"]\n",
                node.id,
                node.kind.label()
            ));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for dep in &node.deps {
                out.push_str(&format!("  n{} --> n{i}\n", self.index[dep]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: &str, deps: &[&str]) -> NodeSpec {
        let mut spec = NodeSpec::new(id, StageKind::Csv);
        for d in deps {
            spec = spec.dep(*d);
        }
        spec
    }

    #[test]
    fn topo_order_respects_deps_and_declaration_order() {
        let g = FlowGraph::new(vec![
            node("csv", &["search"]),
            node("dataset", &[]),
            node("train", &["dataset"]),
            node("search", &["dataset", "train"]),
        ])
        .unwrap();
        let order: Vec<&str> = g
            .topo_order()
            .unwrap()
            .into_iter()
            .map(|i| g.nodes()[i].id.as_str())
            .collect();
        assert_eq!(order, vec!["dataset", "train", "search", "csv"]);
    }

    #[test]
    fn validation_catches_duplicates_missing_deps_and_cycles() {
        assert!(FlowGraph::new(vec![node("a", &[]), node("a", &[])])
            .unwrap_err()
            .contains("duplicate"));
        assert!(FlowGraph::new(vec![node("a", &["ghost"])])
            .unwrap_err()
            .contains("unknown node 'ghost'"));
        assert!(FlowGraph::new(vec![node("a", &["b"]), node("b", &["a"])])
            .unwrap_err()
            .contains("cycle"));
    }

    #[test]
    fn duplicate_deps_count_one_edge() {
        let g = FlowGraph::new(vec![node("a", &[]), node("b", &["a", "a"])]).unwrap();
        assert_eq!(g.topo_order().unwrap(), vec![0, 1]);
    }

    #[test]
    fn renderings_mention_every_node_and_edge() {
        let g = FlowGraph::new(vec![node("dataset", &[]), node("train", &["dataset"])]).unwrap();
        let dot = g.dot("fig");
        assert!(dot.contains("\"dataset\" -> \"train\""));
        assert!(dot.contains("[csv]"));
        let mmd = g.mermaid("fig");
        assert!(mmd.contains("n0 --> n1"));
        assert!(mmd.contains("train [csv]"));
    }

    #[test]
    fn builder_sets_all_fields() {
        let spec = NodeSpec::new("x", StageKind::Engine("bo".into()))
            .param("budget", 8)
            .dep("dataset")
            .policy(CachePolicy::Stamp)
            .emit("x.csv")
            .print()
            .exclusive()
            .runs(|_| Ok(Value::Int(1)));
        assert_eq!(spec.kind.label(), "engine:bo");
        assert_eq!(spec.params.get("budget").unwrap(), "8");
        assert_eq!(spec.deps, vec!["dataset"]);
        assert_eq!(spec.policy, CachePolicy::Stamp);
        assert_eq!(spec.emit.as_deref(), Some("x.csv"));
        assert!(spec.print && spec.exclusive);
        assert_eq!((spec.run)(&[]).unwrap(), Value::Int(1));
    }
}
