//! Exact-arithmetic validation of the data-movement analysis against
//! hand-computed counts on a tiny layer, plus energy-accounting identities.
//!
//! These tests pin the model's semantics: any change to the traffic
//! formulas must update these numbers consciously.

use vaesa_accel::{ArchDescription, LayerShape};
use vaesa_timeloop::{AccessCounts, CostModel, EnergyModel, Mapping};

/// 1x1 conv, 2x2 output, 2 in-channels, 2 out-channels, stride 1:
/// 16 MACs, 4 weights, 8 inputs, 8 outputs.
fn tiny_layer() -> LayerShape {
    LayerShape::new("tiny", 1, 1, 2, 2, 2, 2, 1, 1)
}

fn roomy_arch() -> ArchDescription {
    ArchDescription {
        pe_count: 4,
        macs_per_pe: 4,
        accum_buf_bytes: 1024,
        weight_buf_bytes: 1024,
        input_buf_bytes: 1024,
        global_buf_bytes: 4096,
    }
}

#[test]
fn unit_mapping_counts_match_hand_computation() {
    let counts = AccessCounts::analyze(&roomy_arch(), &tiny_layer(), &Mapping::unit());

    assert_eq!(counts.macs, 16.0);
    // All tiles are 1, so every DRAM-level tile count is 2:
    // weights refetched per spatial output tile (2*2), inputs per K tile,
    // outputs written once plus 4-byte partial spills for n_c2 - 1 = 1 split.
    assert_eq!(counts.dram_weight_bytes, 4.0 * 4.0);
    assert_eq!(counts.dram_input_bytes, 8.0 * 2.0);
    assert_eq!(counts.dram_output_bytes, 8.0 + 8.0 * 4.0 * 2.0);
    // GB: input fills (= DRAM input) + reads per K pass above PE (2 passes);
    // outputs read-modify-written per C pass above PE (2 passes).
    assert_eq!(counts.gb_input_bytes, 16.0 + 8.0 * 2.0);
    assert_eq!(counts.gb_output_bytes, 8.0 * 4.0 * 2.0 * 2.0);
    // PE buffers: one read per MAC (no register reuse at tile 1) + fills.
    assert_eq!(counts.weight_buf_access_bytes, 16.0 + 16.0);
    assert_eq!(counts.input_buf_access_bytes, 16.0 + 16.0);
    // Accumulator: read-modify-write of a 4-byte partial per MAC.
    assert_eq!(counts.accum_buf_access_bytes, 2.0 * 16.0 * 4.0);
    // Residency: single elements everywhere; GB holds 1 input byte + one
    // 4-byte partial.
    assert_eq!(counts.weight_buf_required, 1);
    assert_eq!(counts.input_buf_required, 1);
    assert_eq!(counts.accum_buf_required, 4);
    assert_eq!(counts.global_buf_required, 5);
}

#[test]
fn spatial_mapping_counts_match_hand_computation() {
    let mapping = Mapping {
        spatial_k: 2,
        spatial_c: 2,
        ..Mapping::unit()
    };
    let counts = AccessCounts::analyze(&roomy_arch(), &tiny_layer(), &mapping);

    // Full C and K are now covered spatially: no reduction splits, no K
    // refetch of inputs.
    assert_eq!(counts.dram_weight_bytes, 4.0 * 4.0); // still per-output-tile
    assert_eq!(counts.dram_input_bytes, 8.0);
    assert_eq!(counts.dram_output_bytes, 8.0); // single final write
    assert_eq!(counts.gb_input_bytes, 8.0 + 8.0);
    assert_eq!(counts.gb_output_bytes, 8.0 * 4.0 * 2.0);
    // Dot-product reduction across 2 lanes halves accumulator traffic.
    assert_eq!(counts.accum_buf_access_bytes, 2.0 * 8.0 * 4.0);
}

#[test]
fn latency_components_match_hand_computation() {
    let model = CostModel::default();
    let eval = model
        .evaluate(&roomy_arch(), &tiny_layer(), &Mapping::unit())
        .expect("valid");
    assert_eq!(eval.compute_cycles, 16.0);
    let dram_bytes = 16.0 + 16.0 + 72.0; // weights + inputs + (write & spills)
    assert_eq!(
        eval.dram_cycles,
        dram_bytes / EnergyModel::nm40().dram_bytes_per_cycle
    );
    assert_eq!(eval.latency_cycles, 16.0); // compute-bound at this size
}

#[test]
fn energy_uses_per_level_prices_exactly() {
    let model = CostModel::default();
    let arch = roomy_arch();
    let eval = model
        .evaluate(&arch, &tiny_layer(), &Mapping::unit())
        .expect("valid");
    let e = EnergyModel::nm40();
    let c = &eval.counts;

    assert_eq!(eval.energy.mac_pj, 16.0 * e.mac_pj);
    assert_eq!(eval.energy.dram_pj, c.dram_bytes() * e.dram_pj_per_byte);
    assert_eq!(
        eval.energy.global_buf_pj,
        c.gb_bytes() * e.sram_pj_per_byte(arch.global_buf_bytes)
    );
    assert_eq!(
        eval.energy.weight_buf_pj,
        c.wbuf_bytes() * e.sram_pj_per_byte(arch.weight_buf_bytes)
    );
    assert_eq!(
        eval.energy.input_buf_pj,
        c.ibuf_bytes() * e.sram_pj_per_byte(arch.input_buf_bytes)
    );
    assert_eq!(
        eval.energy.accum_buf_pj,
        c.abuf_bytes() * e.sram_pj_per_byte(arch.accum_buf_bytes)
    );
}

#[test]
fn strided_layer_inflates_input_footprint_only() {
    // Same output geometry, stride 2: the input halo grows, weights and
    // outputs do not.
    let unstrided = LayerShape::new("s1", 3, 3, 8, 8, 4, 4, 1, 1);
    let strided = LayerShape::new("s2", 3, 3, 8, 8, 4, 4, 2, 2);
    let arch = ArchDescription {
        pe_count: 4,
        macs_per_pe: 4,
        accum_buf_bytes: 64 * 1024,
        weight_buf_bytes: 64 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 256 * 1024,
    };
    let m = Mapping {
        p0: 8,
        q0: 8,
        ..Mapping::unit()
    };
    let a = AccessCounts::analyze(&arch, &unstrided, &m);
    let b = AccessCounts::analyze(&arch, &strided, &m);
    assert_eq!(a.macs, b.macs);
    assert_eq!(a.weight_buf_required, b.weight_buf_required);
    assert_eq!(a.accum_buf_required, b.accum_buf_required);
    assert!(b.input_buf_required > a.input_buf_required);
    assert!(b.dram_input_bytes > a.dram_input_bytes);
}

#[test]
fn growing_spatial_c_reduces_accumulator_traffic_proportionally() {
    let layer = LayerShape::new("c", 3, 3, 8, 8, 64, 8, 1, 1);
    let arch = ArchDescription {
        pe_count: 8,
        macs_per_pe: 64,
        accum_buf_bytes: 64 * 1024,
        weight_buf_bytes: 256 * 1024,
        input_buf_bytes: 256 * 1024,
        global_buf_bytes: 512 * 1024,
    };
    let traffic = |sc: u64| {
        let m = Mapping {
            spatial_c: sc,
            ..Mapping::unit()
        };
        AccessCounts::analyze(&arch, &layer, &m).accum_buf_access_bytes
    };
    assert_eq!(traffic(1) / traffic(4), 4.0);
    assert_eq!(traffic(4) / traffic(16), 4.0);
}

#[test]
fn bigger_gb_tiles_cut_weight_refetch_exactly() {
    let layer = LayerShape::new("w", 1, 1, 16, 16, 8, 8, 1, 1);
    let arch = ArchDescription {
        pe_count: 4,
        macs_per_pe: 8,
        accum_buf_bytes: 64 * 1024,
        weight_buf_bytes: 64 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 1024 * 1024,
    };
    let weight_bytes = |p1: u64, q1: u64| {
        let m = Mapping {
            p1,
            q1,
            ..Mapping::unit()
        };
        AccessCounts::analyze(&arch, &layer, &m).dram_weight_bytes
    };
    // Doubling the P tile halves the number of spatial passes: 16 -> 8.
    assert_eq!(weight_bytes(1, 1) / weight_bytes(2, 1), 2.0);
    assert_eq!(weight_bytes(1, 1) / weight_bytes(4, 4), 16.0);
}
