use serde::{Deserialize, Serialize};
use std::fmt;
use vaesa_accel::{ArchDescription, LayerShape};

/// Which operand stays resident in the MAC-adjacent registers — the
/// dataflow choice the paper's motivation lists among the key hardware
/// knobs ("ranging from different dataflow choices to different buffer
/// sizes", §I).
///
/// The dataflow determines register-level reuse: which operand is fetched
/// once and reused across the innermost loops, and which must be re-read
/// from its buffer every MAC. Weight-stationary is Simba's (and this
/// reproduction's) default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Dataflow {
    /// Weights pinned in MAC registers, reused across the `p0 × q0` output
    /// tile (Simba, NVDLA).
    #[default]
    WeightStationary,
    /// Partial sums pinned in MAC registers across the whole reduction;
    /// weights re-fetched every MAC (ShiDianNao-style).
    OutputStationary,
    /// Input activations pinned, reused across `R·S·k0` filter taps and
    /// output channels (SCNN-style).
    InputStationary,
}

impl Dataflow {
    /// All three dataflows, for exhaustive search.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::InputStationary,
    ];

    /// Short name for display.
    pub fn name(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
            Dataflow::InputStationary => "IS",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a layer's loop nest is tiled across the accelerator's memory
/// hierarchy and spatial resources.
///
/// The loop structure is Simba-like (the [`Dataflow`] field selects which
/// operand is register-resident innermost):
///
/// ```text
/// DRAM:   for k2, c2, q2, p2            (tile counts above the global buffer)
/// GB:     for k1, c1, q1, p1            (tile counts above the PE buffers)
/// space:  par k over spatial_k PEs, par c over spatial_c MAC lanes
/// PE:     for r, s, p0, q0, c0, k0      (innermost temporal tile)
/// ```
///
/// The mapping stores the *innermost tile sizes* (`p0, q0, c0, k0`) and the
/// *global-buffer tile multipliers* (`p1, q1, c1, k1`); the counts at each
/// outer level are derived by ceiling division against the layer dimensions.
/// Filter dimensions R and S are always kept whole at the PE level (kernels
/// are small), mirroring CoSA's fixed placement of R/S innermost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    /// Register-level dataflow (defaults to weight-stationary).
    #[serde(default)]
    pub dataflow: Dataflow,
    /// Output channels processed in parallel across PEs.
    pub spatial_k: u64,
    /// Input channels processed in parallel across MAC lanes within a PE.
    pub spatial_c: u64,
    /// PE-level temporal tile of the output width P.
    pub p0: u64,
    /// PE-level temporal tile of the output height Q.
    pub q0: u64,
    /// PE-level temporal tile of the input channels C (per lane group).
    pub c0: u64,
    /// PE-level temporal tile of the output channels K (per PE).
    pub k0: u64,
    /// Global-buffer multiplier on the P tile.
    pub p1: u64,
    /// Global-buffer multiplier on the Q tile.
    pub q1: u64,
    /// Global-buffer multiplier on the C tile.
    pub c1: u64,
    /// Global-buffer multiplier on the K tile.
    pub k1: u64,
}

impl Mapping {
    /// The trivial mapping: everything tiled to 1, no parallelism.
    ///
    /// Always valid on any architecture (it needs only one weight, one
    /// input, and one partial sum resident per level), and maximally slow —
    /// useful as a fallback and in tests.
    pub fn unit() -> Self {
        Mapping {
            dataflow: Dataflow::WeightStationary,
            spatial_k: 1,
            spatial_c: 1,
            p0: 1,
            q0: 1,
            c0: 1,
            k0: 1,
            p1: 1,
            q1: 1,
            c1: 1,
            k1: 1,
        }
    }

    /// Input channels resident per PE (`c0 * spatial_c`).
    pub fn c_per_pe(&self) -> u64 {
        self.c0 * self.spatial_c
    }

    /// Output channels resident per PE (`k0`).
    pub fn k_per_pe(&self) -> u64 {
        self.k0
    }

    /// Global-buffer tile of P (clamped to the layer dimension by the
    /// evaluator).
    pub fn p_gb(&self) -> u64 {
        self.p0 * self.p1
    }

    /// Global-buffer tile of Q.
    pub fn q_gb(&self) -> u64 {
        self.q0 * self.q1
    }

    /// Global-buffer tile of C (including the spatial lanes).
    pub fn c_gb(&self) -> u64 {
        self.c0 * self.spatial_c * self.c1
    }

    /// Global-buffer tile of K (including the spatial PEs).
    pub fn k_gb(&self) -> u64 {
        self.k0 * self.spatial_k * self.k1
    }

    /// Checks structural validity against an architecture and layer.
    ///
    /// # Errors
    ///
    /// Returns a [`MappingError`] naming the violated constraint:
    /// spatial factors must fit the hardware, every tile factor must be
    /// positive, and no tile may exceed its layer dimension.
    pub fn validate(&self, arch: &ArchDescription, layer: &LayerShape) -> Result<(), MappingError> {
        let fields = [
            ("spatial_k", self.spatial_k),
            ("spatial_c", self.spatial_c),
            ("p0", self.p0),
            ("q0", self.q0),
            ("c0", self.c0),
            ("k0", self.k0),
            ("p1", self.p1),
            ("q1", self.q1),
            ("c1", self.c1),
            ("k1", self.k1),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(MappingError::ZeroFactor { field: name });
            }
        }
        if self.spatial_k > arch.pe_count {
            return Err(MappingError::SpatialOverflow {
                field: "spatial_k",
                requested: self.spatial_k,
                available: arch.pe_count,
            });
        }
        if self.spatial_c > arch.macs_per_pe {
            return Err(MappingError::SpatialOverflow {
                field: "spatial_c",
                requested: self.spatial_c,
                available: arch.macs_per_pe,
            });
        }
        let dims = [
            ("p", self.p_gb(), layer.p),
            ("q", self.q_gb(), layer.q),
            ("c", self.c_gb(), layer.c),
            ("k", self.k_gb(), layer.k),
        ];
        for (name, tile, dim) in dims {
            if tile > dim.next_power_of_two().max(dim) * 2 {
                // Tiles may overshoot a dimension slightly (ceil semantics),
                // but grossly oversized tiles indicate a mis-built mapping.
                return Err(MappingError::TileExceedsDim {
                    field: name,
                    tile,
                    dim,
                });
            }
        }
        Ok(())
    }
}

impl Default for Mapping {
    fn default() -> Self {
        Mapping::unit()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spatial(k={}, c={}) pe(p0={}, q0={}, c0={}, k0={}) gb(p1={}, q1={}, c1={}, k1={})",
            self.dataflow,
            self.spatial_k,
            self.spatial_c,
            self.p0,
            self.q0,
            self.c0,
            self.k0,
            self.p1,
            self.q1,
            self.c1,
            self.k1
        )
    }
}

/// Structural mapping errors detected before cost evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MappingError {
    /// A tiling or spatial factor was zero.
    ZeroFactor {
        /// The zero field's name.
        field: &'static str,
    },
    /// A spatial factor exceeds the available hardware parallelism.
    SpatialOverflow {
        /// The offending field.
        field: &'static str,
        /// Requested parallelism.
        requested: u64,
        /// Hardware limit.
        available: u64,
    },
    /// A derived tile wildly exceeds the layer dimension.
    TileExceedsDim {
        /// Dimension name (p/q/c/k).
        field: &'static str,
        /// Derived tile extent.
        tile: u64,
        /// Layer dimension.
        dim: u64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::ZeroFactor { field } => write!(f, "mapping factor {field} is zero"),
            MappingError::SpatialOverflow {
                field,
                requested,
                available,
            } => write!(
                f,
                "spatial factor {field}={requested} exceeds hardware limit {available}"
            ),
            MappingError::TileExceedsDim { field, tile, dim } => {
                write!(
                    f,
                    "tile {field}={tile} grossly exceeds layer dimension {dim}"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchDescription {
        ArchDescription {
            pe_count: 16,
            macs_per_pe: 64,
            accum_buf_bytes: 4096,
            weight_buf_bytes: 65536,
            input_buf_bytes: 16384,
            global_buf_bytes: 131072,
        }
    }

    fn layer() -> LayerShape {
        LayerShape::new("t", 3, 3, 28, 28, 192, 48, 1, 1)
    }

    #[test]
    fn unit_mapping_is_always_valid() {
        assert!(Mapping::unit().validate(&arch(), &layer()).is_ok());
    }

    #[test]
    fn zero_factor_rejected() {
        let mut m = Mapping::unit();
        m.c0 = 0;
        assert!(matches!(
            m.validate(&arch(), &layer()),
            Err(MappingError::ZeroFactor { field: "c0" })
        ));
    }

    #[test]
    fn spatial_overflow_rejected() {
        let mut m = Mapping::unit();
        m.spatial_k = 32; // arch has 16 PEs
        let err = m.validate(&arch(), &layer()).unwrap_err();
        assert!(matches!(err, MappingError::SpatialOverflow { .. }));
        assert!(err.to_string().contains("spatial_k"));

        let mut m = Mapping::unit();
        m.spatial_c = 100; // arch has 64 lanes
        assert!(m.validate(&arch(), &layer()).is_err());
    }

    #[test]
    fn grossly_oversized_tile_rejected() {
        let mut m = Mapping::unit();
        m.p0 = 28;
        m.p1 = 28; // tile 784 vs dim 28
        assert!(matches!(
            m.validate(&arch(), &layer()),
            Err(MappingError::TileExceedsDim { field: "p", .. })
        ));
    }

    #[test]
    fn derived_tiles_multiply_factors() {
        let m = Mapping {
            dataflow: Dataflow::WeightStationary,
            spatial_k: 4,
            spatial_c: 8,
            p0: 7,
            q0: 7,
            c0: 2,
            k0: 3,
            p1: 2,
            q1: 2,
            c1: 6,
            k1: 2,
        };
        assert_eq!(m.p_gb(), 14);
        assert_eq!(m.q_gb(), 14);
        assert_eq!(m.c_gb(), 2 * 8 * 6);
        assert_eq!(m.k_gb(), 3 * 4 * 2);
        assert_eq!(m.c_per_pe(), 16);
        assert_eq!(m.k_per_pe(), 3);
    }

    #[test]
    fn display_mentions_all_factors() {
        let txt = Mapping::unit().to_string();
        assert!(txt.contains("spatial"));
        assert!(txt.contains("gb("));
        assert!(txt.contains("WS"));
    }

    #[test]
    fn dataflow_names_and_default() {
        assert_eq!(Dataflow::default(), Dataflow::WeightStationary);
        assert_eq!(Dataflow::ALL.len(), 3);
        assert_eq!(Dataflow::OutputStationary.to_string(), "OS");
    }
}
