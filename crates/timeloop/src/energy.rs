use serde::{Deserialize, Serialize};

/// Technology constants for the analytical energy/latency model.
///
/// The defaults are inspired by published 40 nm numbers (the paper's
/// Timeloop runs use a 40 nm technology node): a MAC costs ~1 pJ, SRAM
/// access energy grows roughly with the square root of capacity, and DRAM
/// access costs two orders of magnitude more than small SRAM access. The
/// absolute values matter less than the *ratios*, which shape the
/// optimization landscape the same way Timeloop's tables do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per 8-bit MAC operation, in pJ.
    pub mac_pj: f64,
    /// Base energy per byte read/written from any SRAM, in pJ.
    pub sram_base_pj_per_byte: f64,
    /// Capacity-dependent SRAM energy coefficient: added energy per byte is
    /// `coeff * sqrt(capacity_kib)` pJ.
    pub sram_sqrt_pj_per_byte: f64,
    /// Energy per byte of DRAM traffic, in pJ.
    pub dram_pj_per_byte: f64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Global-buffer bandwidth in bytes per cycle.
    pub gb_bytes_per_cycle: f64,
}

impl EnergyModel {
    /// The default 40 nm-inspired model used throughout the reproduction.
    pub fn nm40() -> Self {
        EnergyModel {
            mac_pj: 1.0,
            sram_base_pj_per_byte: 0.06,
            sram_sqrt_pj_per_byte: 0.012,
            dram_pj_per_byte: 100.0,
            dram_bytes_per_cycle: 16.0,
            gb_bytes_per_cycle: 64.0,
        }
    }

    /// Energy in pJ for accessing one byte of an SRAM of the given capacity.
    ///
    /// Larger SRAMs cost more per access (longer bit/word lines); the √C
    /// scaling is the standard first-order CACTI approximation.
    pub fn sram_pj_per_byte(&self, capacity_bytes: u64) -> f64 {
        let kib = capacity_bytes as f64 / 1024.0;
        self.sram_base_pj_per_byte + self.sram_sqrt_pj_per_byte * kib.max(0.0).sqrt()
    }

    /// Silicon area in mm² of an SRAM of the given capacity (first-order:
    /// proportional, ~1 mm² per MiB at 40 nm).
    pub fn sram_area_mm2(&self, capacity_bytes: u64) -> f64 {
        capacity_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Area of one MAC unit in mm² (8-bit multiplier + accumulator).
    pub fn mac_area_mm2(&self) -> f64 {
        0.0005
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::nm40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_grows_with_capacity() {
        let m = EnergyModel::nm40();
        let small = m.sram_pj_per_byte(1024);
        let large = m.sram_pj_per_byte(1024 * 1024);
        assert!(small < large);
        assert!(small > 0.0);
    }

    #[test]
    fn dram_is_much_more_expensive_than_sram() {
        let m = EnergyModel::nm40();
        // The DRAM/SRAM ratio is what drives the landscape shape: it must be
        // large (Timeloop's 40 nm tables put it around 100x for small SRAM).
        assert!(m.dram_pj_per_byte / m.sram_pj_per_byte(8 * 1024) > 50.0);
    }

    #[test]
    fn area_is_monotone_in_capacity() {
        let m = EnergyModel::nm40();
        assert!(m.sram_area_mm2(2048) > m.sram_area_mm2(1024));
        assert!(m.mac_area_mm2() > 0.0);
    }

    #[test]
    fn default_is_nm40() {
        assert_eq!(EnergyModel::default(), EnergyModel::nm40());
    }
}
