//! Network-on-chip model for the PE array.
//!
//! The paper's hardware template is Simba, a *chiplet-based* architecture
//! whose PEs communicate over a mesh NoC. The base cost model folds all
//! on-chip movement into buffer accesses; this optional extension charges
//! the array-level movement explicitly:
//!
//! - input activations are multicast from the global buffer to the
//!   `spatial_k` PEs that share them;
//! - weights stream from DRAM to each PE's weight buffer;
//! - output partial sums are collected from the PEs back to the global
//!   buffer.
//!
//! Hop counts use the standard mesh approximation: an `n`-endpoint
//! multicast/reduction tree on a `√P × √P` mesh spans ≈ `√n` hops.

use serde::{Deserialize, Serialize};

/// Technology constants for the mesh NoC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    /// Energy per byte per hop, in pJ (40 nm mesh links are ~0.05–0.1
    /// pJ/byte/hop).
    pub hop_pj_per_byte: f64,
    /// Per-link bandwidth in bytes per cycle.
    pub link_bytes_per_cycle: f64,
}

impl NocModel {
    /// The default 40 nm-inspired mesh.
    pub fn nm40() -> Self {
        NocModel {
            hop_pj_per_byte: 0.06,
            link_bytes_per_cycle: 32.0,
        }
    }

    /// Average hop count to reach `endpoints` PEs on a mesh.
    pub fn mesh_hops(endpoints: u64) -> f64 {
        (endpoints as f64).sqrt().max(1.0)
    }

    /// NoC traffic in byte·hops for one layer execution, given the
    /// data-movement counts and the spatial mapping width.
    pub fn byte_hops(
        &self,
        gb_input_bytes: f64,
        dram_weight_bytes: f64,
        gb_output_bytes: f64,
        spatial_k: u64,
        pe_count: u64,
    ) -> f64 {
        let input_hops = Self::mesh_hops(spatial_k);
        let weight_hops = Self::mesh_hops(pe_count) / 2.0; // average unicast distance
        let output_hops = Self::mesh_hops(spatial_k);
        gb_input_bytes * input_hops
            + dram_weight_bytes * weight_hops
            + gb_output_bytes * output_hops
    }

    /// NoC energy in pJ for the given traffic.
    pub fn energy_pj(&self, byte_hops: f64) -> f64 {
        byte_hops * self.hop_pj_per_byte
    }

    /// NoC-bandwidth-bound cycle count: the mesh bisection supplies
    /// `√P` parallel links.
    pub fn cycles(&self, byte_hops: f64, pe_count: u64) -> f64 {
        let links = (pe_count as f64).sqrt().max(1.0);
        byte_hops / (self.link_bytes_per_cycle * links)
    }
}

impl Default for NocModel {
    fn default() -> Self {
        NocModel::nm40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_hops_grow_sublinearly() {
        assert_eq!(NocModel::mesh_hops(1), 1.0);
        assert_eq!(NocModel::mesh_hops(16), 4.0);
        assert_eq!(NocModel::mesh_hops(64), 8.0);
        assert!(NocModel::mesh_hops(64) < 64.0 / 2.0);
    }

    #[test]
    fn wider_spatial_mapping_costs_more_byte_hops() {
        let noc = NocModel::nm40();
        let narrow = noc.byte_hops(1000.0, 1000.0, 1000.0, 4, 64);
        let wide = noc.byte_hops(1000.0, 1000.0, 1000.0, 64, 64);
        assert!(wide > narrow);
    }

    #[test]
    fn energy_and_cycles_scale_linearly_with_traffic() {
        let noc = NocModel::nm40();
        assert_eq!(noc.energy_pj(2000.0), 2.0 * noc.energy_pj(1000.0));
        assert_eq!(noc.cycles(2000.0, 16), 2.0 * noc.cycles(1000.0, 16));
        // More PEs -> more parallel links -> fewer cycles.
        assert!(noc.cycles(1000.0, 64) < noc.cycles(1000.0, 16));
    }
}
