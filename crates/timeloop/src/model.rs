use crate::{Dataflow, EnergyModel, Mapping, MappingError, NocModel};
use serde::{Deserialize, Serialize};
use std::fmt;
use vaesa_accel::{ArchDescription, LayerShape};

/// Bytes per element of each data type in the modeled accelerator:
/// 8-bit weights and activations, 32-bit partial sums (Simba uses 8-bit
/// datapaths with wide accumulation).
const WEIGHT_BYTES: f64 = 1.0;
const INPUT_BYTES: f64 = 1.0;
const OUTPUT_BYTES: f64 = 1.0;
const PARTIAL_BYTES: f64 = 4.0;

/// The analytical cost model: given an architecture, a layer, and a mapping,
/// derives per-level access counts, latency, energy, and area.
///
/// The analysis follows Timeloop's methodology: tile sizes at each memory
/// level determine how often each tensor must be (re)fetched from the level
/// above, access counts are multiplied by capacity-dependent per-access
/// energies, and latency is the maximum of the compute-bound and
/// bandwidth-bound cycle counts.
///
/// # Examples
///
/// ```
/// use vaesa_timeloop::{CostModel, Mapping};
/// use vaesa_accel::{ArchDescription, LayerShape};
///
/// let model = CostModel::default();
/// let arch = ArchDescription {
///     pe_count: 16, macs_per_pe: 64,
///     accum_buf_bytes: 8192, weight_buf_bytes: 65536,
///     input_buf_bytes: 32768, global_buf_bytes: 262144,
/// };
/// let layer = LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1);
/// let eval = model.evaluate(&arch, &layer, &Mapping::unit())?;
/// assert!(eval.latency_cycles > 0.0 && eval.energy_pj > 0.0);
/// # Ok::<(), vaesa_timeloop::EvalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CostModel {
    /// Technology constants (energies, bandwidths, areas).
    pub energy: EnergyModel,
    /// Optional mesh NoC model (Simba's PEs communicate over a chiplet
    /// mesh); `None` folds array-level movement into buffer accesses as the
    /// base model does.
    pub noc: Option<NocModel>,
}

impl CostModel {
    /// Creates a cost model with the given technology constants and no NoC.
    pub fn new(energy: EnergyModel) -> Self {
        CostModel { energy, noc: None }
    }

    /// Returns this model with an explicit NoC.
    pub fn with_noc(mut self, noc: NocModel) -> Self {
        self.noc = Some(noc);
        self
    }

    /// Evaluates a `(architecture, layer, mapping)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Mapping`] for structurally invalid mappings and
    /// [`EvalError::BufferOverflow`] when a tile does not fit its buffer.
    pub fn evaluate(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
        mapping: &Mapping,
    ) -> Result<Evaluation, EvalError> {
        mapping.validate(arch, layer).map_err(EvalError::Mapping)?;

        let counts = AccessCounts::analyze(arch, layer, mapping);
        counts.check_buffers(arch)?;

        let e = &self.energy;
        let mut energy = EnergyBreakdown {
            noc_pj: 0.0,
            mac_pj: counts.macs * e.mac_pj,
            dram_pj: counts.dram_bytes() * e.dram_pj_per_byte,
            global_buf_pj: counts.gb_bytes() * e.sram_pj_per_byte(arch.global_buf_bytes),
            weight_buf_pj: counts.wbuf_bytes() * e.sram_pj_per_byte(arch.weight_buf_bytes),
            input_buf_pj: counts.ibuf_bytes() * e.sram_pj_per_byte(arch.input_buf_bytes),
            accum_buf_pj: counts.abuf_bytes() * e.sram_pj_per_byte(arch.accum_buf_bytes),
        };

        let compute_cycles = counts.macs / (mapping.spatial_k * mapping.spatial_c) as f64;
        let utilization = (mapping.spatial_k * mapping.spatial_c) as f64
            / (arch.pe_count * arch.macs_per_pe) as f64;
        let dram_cycles = counts.dram_bytes() / e.dram_bytes_per_cycle;
        let gb_cycles = counts.gb_bytes() / e.gb_bytes_per_cycle;
        let (noc_pj, noc_cycles) = match &self.noc {
            None => (0.0, 0.0),
            Some(noc) => {
                let byte_hops = noc.byte_hops(
                    counts.gb_input_bytes,
                    counts.dram_weight_bytes,
                    counts.gb_output_bytes,
                    mapping.spatial_k,
                    arch.pe_count,
                );
                (
                    noc.energy_pj(byte_hops),
                    noc.cycles(byte_hops, arch.pe_count),
                )
            }
        };
        let latency_cycles = compute_cycles
            .max(dram_cycles)
            .max(gb_cycles)
            .max(noc_cycles);

        let area_mm2 = arch.pe_count as f64
            * (arch.macs_per_pe as f64 * e.mac_area_mm2()
                + e.sram_area_mm2(arch.weight_buf_bytes)
                + e.sram_area_mm2(arch.input_buf_bytes)
                + e.sram_area_mm2(arch.accum_buf_bytes))
            + e.sram_area_mm2(arch.global_buf_bytes);

        energy.noc_pj = noc_pj;

        Ok(Evaluation {
            latency_cycles,
            energy_pj: energy.total(),
            area_mm2,
            compute_cycles,
            dram_cycles,
            gb_cycles,
            utilization,
            counts,
            energy,
        })
    }
}

/// Per-level data-movement counts derived from the mapping.
///
/// All counts are in *bytes moved* unless the field name says otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Total multiply-accumulate operations.
    pub macs: f64,
    /// Weight bytes fetched from DRAM (refetched once per spatial output
    /// tile pass, since the on-chip buffers cannot in general hold all
    /// weights while the output space is traversed).
    pub dram_weight_bytes: f64,
    /// Input-activation bytes fetched from DRAM (refetched once per
    /// output-channel tile pass at the global-buffer level).
    pub dram_input_bytes: f64,
    /// Output bytes moved to/from DRAM: one final quantized write plus
    /// partial-sum spills when the reduction is split across global-buffer
    /// tiles.
    pub dram_output_bytes: f64,
    /// Global-buffer bytes accessed for input activations (fills + reads to
    /// the PE array).
    pub gb_input_bytes: f64,
    /// Global-buffer bytes accessed for output partial sums.
    pub gb_output_bytes: f64,
    /// Weight-buffer bytes accessed (fills + per-MAC register refills).
    pub weight_buf_access_bytes: f64,
    /// Input-buffer bytes accessed.
    pub input_buf_access_bytes: f64,
    /// Accumulation-buffer bytes accessed (read-modify-write per vector-MAC
    /// reduction).
    pub accum_buf_access_bytes: f64,
    /// Required residency per buffer, for capacity checks (bytes).
    pub weight_buf_required: u64,
    /// Required input-buffer residency (bytes).
    pub input_buf_required: u64,
    /// Required accumulation-buffer residency (bytes).
    pub accum_buf_required: u64,
    /// Required global-buffer residency (bytes).
    pub global_buf_required: u64,
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b.max(1))
}

impl AccessCounts {
    /// Runs the tile-reuse analysis for a validated mapping.
    ///
    /// The architecture is not consulted directly — capacity checks happen in
    /// [`CostModel::evaluate`] against the `*_required` fields — but is part
    /// of the signature so future refinements (e.g. bandwidth-aware fills)
    /// need no API break.
    pub fn analyze(_arch: &ArchDescription, layer: &LayerShape, m: &Mapping) -> Self {
        let (r, s) = (layer.r, layer.s);
        let (p, q, c, k) = (layer.p, layer.q, layer.c, layer.k);

        // Clamp tiles to the layer dimensions (ceil semantics allow factors
        // to overshoot slightly).
        let p0 = m.p0.min(p);
        let q0 = m.q0.min(q);
        let k0 = m.k0.min(k);
        let c_pe = m.c_per_pe().min(c);
        let p_g = m.p_gb().min(p);
        let q_g = m.q_gb().min(q);
        let c_g = m.c_gb().min(c);
        let k_g = m.k_gb().min(k);

        // Tile counts at the DRAM level (iterations over global-buffer tiles).
        let n_p2 = ceil_div(p, p_g);
        let n_q2 = ceil_div(q, q_g);
        let n_c2 = ceil_div(c, c_g);
        let n_k2 = ceil_div(k, k_g);

        // Tile counts above the PE level (global-buffer + DRAM iterations).
        let n_c_pe = ceil_div(c, c_pe);
        let n_k_pe = ceil_div(k, k0 * m.spatial_k);

        let macs = (r * s * p * q) as f64 * (c as f64) * (k as f64);
        let weight_elems = (r * s) as f64 * c as f64 * k as f64;
        let input_elems = layer.input_elems() as f64;
        let output_elems = layer.output_elems() as f64;

        // DRAM traffic.
        let dram_weight_bytes = weight_elems * WEIGHT_BYTES * (n_p2 * n_q2) as f64;
        let dram_input_bytes = input_elems * INPUT_BYTES * n_k2 as f64;
        let dram_output_bytes =
            output_elems * OUTPUT_BYTES + output_elems * PARTIAL_BYTES * 2.0 * (n_c2 - 1) as f64;

        // Global-buffer traffic. Inputs are written once per DRAM fetch and
        // read once per K pass above the PE level; outputs are read-modify-
        // written once per C pass above the PE level. Weights bypass the
        // global buffer and stream directly into the PE weight buffers
        // (Simba's weight path).
        let gb_input_bytes = dram_input_bytes + input_elems * INPUT_BYTES * n_k_pe as f64;
        let gb_output_bytes = output_elems * PARTIAL_BYTES * 2.0 * n_c_pe as f64;

        // PE-buffer traffic. Register-level reuse depends on the dataflow:
        // the stationary operand is fetched once per register tile while the
        // others stream from their buffers.
        //
        // - WS (Simba): a weight loaded into a MAC register is reused across
        //   the inner p0*q0 output positions; inputs are re-read per k0
        //   output-channel group; each vector-MAC cycle read-modify-writes a
        //   4-byte partial shared by spatial_c lanes.
        // - OS: partial sums stay in registers for the whole per-tile
        //   reduction (accumulator traffic collapses to one spill/restore
        //   per outer C pass), but weights lose their register reuse.
        // - IS: an input value is pinned and reused across the R*S filter
        //   taps and k0 output channels it feeds; weights stream per MAC.
        let (wbuf_reads, ibuf_reads, accum_buf_access_bytes) = match m.dataflow {
            Dataflow::WeightStationary => (
                macs / (p0 * q0) as f64,
                macs / k0 as f64,
                2.0 * (macs / m.spatial_c as f64) * PARTIAL_BYTES,
            ),
            Dataflow::OutputStationary => (
                macs,
                macs / k0 as f64,
                2.0 * output_elems * n_c_pe as f64 * PARTIAL_BYTES,
            ),
            Dataflow::InputStationary => (
                macs,
                macs / (r * s * k0) as f64,
                2.0 * (macs / m.spatial_c as f64) * PARTIAL_BYTES,
            ),
        };
        let wbuf_fills = dram_weight_bytes; // weights stream through the buffer
        let weight_buf_access_bytes = wbuf_reads * WEIGHT_BYTES + wbuf_fills;

        let ibuf_fills = input_elems * INPUT_BYTES * n_k_pe as f64;
        let input_buf_access_bytes = ibuf_reads * INPUT_BYTES + ibuf_fills;

        // Residency requirements.
        let w0 = (p0 - 1) * layer.stride_w + r;
        let h0 = (q0 - 1) * layer.stride_h + s;
        let weight_buf_required = r * s * c_pe * k0;
        let input_buf_required = w0 * h0 * c_pe;
        let accum_buf_required = p0 * q0 * k0 * PARTIAL_BYTES as u64;
        let w_g = (p_g - 1) * layer.stride_w + r;
        let h_g = (q_g - 1) * layer.stride_h + s;
        let global_buf_required = w_g * h_g * c_g + p_g * q_g * k_g * PARTIAL_BYTES as u64;

        AccessCounts {
            macs,
            dram_weight_bytes,
            dram_input_bytes,
            dram_output_bytes,
            gb_input_bytes,
            gb_output_bytes,
            weight_buf_access_bytes,
            input_buf_access_bytes,
            accum_buf_access_bytes,
            weight_buf_required,
            input_buf_required,
            accum_buf_required,
            global_buf_required,
        }
    }

    /// Total DRAM bytes moved.
    pub fn dram_bytes(&self) -> f64 {
        self.dram_weight_bytes + self.dram_input_bytes + self.dram_output_bytes
    }

    /// Total global-buffer bytes accessed.
    pub fn gb_bytes(&self) -> f64 {
        self.gb_input_bytes + self.gb_output_bytes
    }

    /// Total weight-buffer bytes accessed.
    pub fn wbuf_bytes(&self) -> f64 {
        self.weight_buf_access_bytes
    }

    /// Total input-buffer bytes accessed.
    pub fn ibuf_bytes(&self) -> f64 {
        self.input_buf_access_bytes
    }

    /// Total accumulation-buffer bytes accessed.
    pub fn abuf_bytes(&self) -> f64 {
        self.accum_buf_access_bytes
    }

    fn check_buffers(&self, arch: &ArchDescription) -> Result<(), EvalError> {
        let checks = [
            (
                "weight buffer",
                self.weight_buf_required,
                arch.weight_buf_bytes,
            ),
            (
                "input buffer",
                self.input_buf_required,
                arch.input_buf_bytes,
            ),
            (
                "accum buffer",
                self.accum_buf_required,
                arch.accum_buf_bytes,
            ),
            (
                "global buffer",
                self.global_buf_required,
                arch.global_buf_bytes,
            ),
        ];
        for (level, required, available) in checks {
            if required > available {
                return Err(EvalError::BufferOverflow {
                    level,
                    required,
                    available,
                });
            }
        }
        Ok(())
    }
}

/// Per-component energy in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC datapath energy.
    pub mac_pj: f64,
    /// DRAM access energy.
    pub dram_pj: f64,
    /// Global-buffer access energy.
    pub global_buf_pj: f64,
    /// Weight-buffer access energy.
    pub weight_buf_pj: f64,
    /// Input-buffer access energy.
    pub input_buf_pj: f64,
    /// Accumulation-buffer access energy.
    pub accum_buf_pj: f64,
    /// Mesh NoC energy (0 when the model has no NoC).
    pub noc_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total(&self) -> f64 {
        self.mac_pj
            + self.dram_pj
            + self.global_buf_pj
            + self.weight_buf_pj
            + self.input_buf_pj
            + self.accum_buf_pj
            + self.noc_pj
    }
}

/// The result of evaluating `(architecture, layer, mapping)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Execution latency in cycles (max of compute- and bandwidth-bound).
    pub latency_cycles: f64,
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Compute-bound cycle count.
    pub compute_cycles: f64,
    /// DRAM-bandwidth-bound cycle count.
    pub dram_cycles: f64,
    /// Global-buffer-bandwidth-bound cycle count.
    pub gb_cycles: f64,
    /// Fraction of the machine's MAC lanes used by the spatial mapping
    /// (`spatial_k * spatial_c / (pe_count * macs_per_pe)`).
    pub utilization: f64,
    /// Data-movement detail.
    pub counts: AccessCounts,
    /// Energy detail.
    pub energy: EnergyBreakdown,
}

impl Evaluation {
    /// Energy-delay product in cycles·pJ — the paper's optimization target.
    pub fn edp(&self) -> f64 {
        self.latency_cycles * self.energy_pj
    }

    /// Fraction of compute-bound cycles in the final latency: 1.0 when the
    /// mapping keeps the MAC array the bottleneck, < 1.0 when memory
    /// bandwidth stalls it.
    pub fn compute_bound_fraction(&self) -> f64 {
        if self.latency_cycles == 0.0 {
            return 1.0;
        }
        self.compute_cycles / self.latency_cycles
    }

    /// Publishes this evaluation as gauges `{prefix}.latency_cycles`,
    /// `{prefix}.energy_pj`, `{prefix}.edp`, `{prefix}.area_mm2`, and
    /// `{prefix}.utilization` on `registry`.
    ///
    /// This is the cost model's entire observability surface: reporting
    /// happens at whatever cadence the *caller* chooses (typically once,
    /// for a run's best design), so [`CostModel::evaluate`](crate::CostModel::evaluate)
    /// itself — a ~50 ns function invoked millions of times during dataset
    /// labeling — stays completely uninstrumented.
    pub fn publish_gauges(&self, registry: &vaesa_obs::Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}.latency_cycles"))
            .set(self.latency_cycles);
        registry
            .gauge(&format!("{prefix}.energy_pj"))
            .set(self.energy_pj);
        registry.gauge(&format!("{prefix}.edp")).set(self.edp());
        registry
            .gauge(&format!("{prefix}.area_mm2"))
            .set(self.area_mm2);
        registry
            .gauge(&format!("{prefix}.utilization"))
            .set(self.utilization);
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency={:.3e} cyc, energy={:.3e} pJ, edp={:.3e}, area={:.2} mm2",
            self.latency_cycles,
            self.energy_pj,
            self.edp(),
            self.area_mm2
        )
    }
}

/// Errors produced by [`CostModel::evaluate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// The mapping is structurally invalid.
    Mapping(MappingError),
    /// A tile exceeds its buffer's capacity.
    BufferOverflow {
        /// The overflowing buffer.
        level: &'static str,
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Mapping(e) => write!(f, "invalid mapping: {e}"),
            EvalError::BufferOverflow {
                level,
                required,
                available,
            } => write!(
                f,
                "{level} overflow: tile needs {required} bytes, only {available} available"
            ),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Mapping(e) => Some(e),
            EvalError::BufferOverflow { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchDescription {
        ArchDescription {
            pe_count: 16,
            macs_per_pe: 64,
            accum_buf_bytes: 16 * 1024,
            weight_buf_bytes: 256 * 1024,
            input_buf_bytes: 64 * 1024,
            global_buf_bytes: 256 * 1024,
        }
    }

    fn layer() -> LayerShape {
        LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1)
    }

    fn good_mapping() -> Mapping {
        Mapping {
            dataflow: Dataflow::WeightStationary,
            spatial_k: 16,
            spatial_c: 16,
            p0: 7,
            q0: 7,
            c0: 2,
            k0: 4,
            p1: 2,
            q1: 2,
            c1: 2,
            k1: 1,
        }
    }

    #[test]
    fn unit_mapping_evaluates() {
        let eval = CostModel::default()
            .evaluate(&arch(), &layer(), &Mapping::unit())
            .unwrap();
        assert!(eval.latency_cycles >= eval.counts.macs); // no parallelism
        assert!(eval.energy_pj > 0.0);
        assert!(eval.edp() > 0.0);
        assert!(eval.area_mm2 > 0.0);
    }

    #[test]
    fn parallel_mapping_is_faster_and_cheaper_than_unit() {
        let model = CostModel::default();
        let slow = model.evaluate(&arch(), &layer(), &Mapping::unit()).unwrap();
        let fast = model.evaluate(&arch(), &layer(), &good_mapping()).unwrap();
        assert!(fast.latency_cycles < slow.latency_cycles / 10.0);
        assert!(fast.energy_pj < slow.energy_pj);
    }

    #[test]
    fn mac_count_is_mapping_independent() {
        let model = CostModel::default();
        let a = model.evaluate(&arch(), &layer(), &Mapping::unit()).unwrap();
        let b = model.evaluate(&arch(), &layer(), &good_mapping()).unwrap();
        assert_eq!(a.counts.macs, b.counts.macs);
        assert_eq!(a.counts.macs, layer().macs() as f64);
    }

    #[test]
    fn compute_cycles_match_parallelism() {
        let model = CostModel::default();
        let m = good_mapping();
        let eval = model.evaluate(&arch(), &layer(), &m).unwrap();
        let expected = layer().macs() as f64 / (m.spatial_k * m.spatial_c) as f64;
        assert!((eval.compute_cycles - expected).abs() < 1e-6);
    }

    #[test]
    fn dram_weight_traffic_shrinks_with_bigger_output_tiles() {
        let model = CostModel::default();
        let mut small = good_mapping();
        small.p1 = 1;
        small.q1 = 1; // smaller GB tile -> more spatial passes
        let mut large = good_mapping();
        large.p1 = 4;
        large.q1 = 4;
        let es = model.evaluate(&arch(), &layer(), &small).unwrap();
        let el = model.evaluate(&arch(), &layer(), &large).unwrap();
        assert!(el.counts.dram_weight_bytes < es.counts.dram_weight_bytes);
    }

    #[test]
    fn splitting_reduction_spills_partials_to_dram() {
        let model = CostModel::default();
        // c_gb smaller than C forces partial-sum DRAM spills.
        let mut m = Mapping::unit();
        m.c0 = 8; // c_gb = 8 < 64 => n_c2 = 8
        let eval = model.evaluate(&arch(), &layer(), &m).unwrap();
        let out_bytes = layer().output_elems() as f64;
        assert!(
            eval.counts.dram_output_bytes > out_bytes,
            "no spill modeled"
        );

        // Full-reduction mapping writes outputs exactly once.
        let mut full = Mapping::unit();
        full.c0 = 64;
        let ev2 = model.evaluate(&arch(), &layer(), &full);
        if let Ok(e) = ev2 {
            assert_eq!(e.counts.dram_output_bytes, out_bytes);
        }
    }

    #[test]
    fn buffer_overflow_reported_per_level() {
        let model = CostModel::default();
        let tiny = ArchDescription {
            pe_count: 16,
            macs_per_pe: 64,
            accum_buf_bytes: 4, // can hold one partial sum only
            weight_buf_bytes: 256 * 1024,
            input_buf_bytes: 64 * 1024,
            global_buf_bytes: 256 * 1024,
        };
        let mut m = Mapping::unit();
        m.p0 = 7;
        m.q0 = 7; // accum needs 7*7*4 bytes
        let err = model.evaluate(&tiny, &layer(), &m).unwrap_err();
        assert!(matches!(
            err,
            EvalError::BufferOverflow {
                level: "accum buffer",
                ..
            }
        ));
        assert!(err.to_string().contains("accum"));
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let eval = CostModel::default()
            .evaluate(&arch(), &layer(), &good_mapping())
            .unwrap();
        assert!((eval.energy.total() - eval.energy_pj).abs() < 1e-9);
    }

    #[test]
    fn fc_layer_evaluates() {
        let fc = LayerShape::fully_connected("fc", 4096, 1000);
        let m = Mapping {
            spatial_k: 16,
            spatial_c: 64,
            c0: 4,
            k0: 8,
            c1: 4,
            k1: 2,
            ..Mapping::unit()
        };
        let eval = CostModel::default().evaluate(&arch(), &fc, &m).unwrap();
        assert_eq!(eval.counts.macs, (4096 * 1000) as f64);
        // FC layers are memory-bound: DRAM cycles should dominate compute.
        assert!(eval.dram_cycles > eval.compute_cycles);
    }

    #[test]
    fn utilization_reflects_spatial_mapping() {
        let model = CostModel::default();
        let unit = model.evaluate(&arch(), &layer(), &Mapping::unit()).unwrap();
        assert!((unit.utilization - 1.0 / (16.0 * 64.0)).abs() < 1e-12);
        let full = model.evaluate(&arch(), &layer(), &good_mapping()).unwrap();
        assert!((full.utilization - (16.0 * 16.0) / (16.0 * 64.0)).abs() < 1e-12);
        assert!(full.utilization <= 1.0);
    }

    #[test]
    fn compute_bound_fraction_is_a_fraction() {
        let model = CostModel::default();
        let e = model.evaluate(&arch(), &layer(), &good_mapping()).unwrap();
        let f = e.compute_bound_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        // With the unit mapping compute dominates entirely.
        let u = model.evaluate(&arch(), &layer(), &Mapping::unit()).unwrap();
        assert_eq!(u.compute_bound_fraction(), 1.0);
    }

    #[test]
    fn latency_is_max_of_bounds() {
        let eval = CostModel::default()
            .evaluate(&arch(), &layer(), &good_mapping())
            .unwrap();
        let expected = eval
            .compute_cycles
            .max(eval.dram_cycles)
            .max(eval.gb_cycles);
        assert_eq!(eval.latency_cycles, expected);
    }

    #[test]
    fn dataflows_trade_register_reuse_as_modeled() {
        let model = CostModel::default();
        let base = good_mapping();
        let eval_with = |df: Dataflow| {
            let m = Mapping {
                dataflow: df,
                ..base
            };
            model.evaluate(&arch(), &layer(), &m).unwrap()
        };
        let ws = eval_with(Dataflow::WeightStationary);
        let os = eval_with(Dataflow::OutputStationary);
        let is = eval_with(Dataflow::InputStationary);
        // Structural (tile-driven) traffic is dataflow-independent.
        assert_eq!(ws.counts.dram_weight_bytes, os.counts.dram_weight_bytes);
        assert_eq!(ws.counts.gb_input_bytes, is.counts.gb_input_bytes);
        // OS collapses accumulator traffic but loses weight-register reuse.
        assert!(os.counts.accum_buf_access_bytes < ws.counts.accum_buf_access_bytes);
        assert!(os.counts.weight_buf_access_bytes > ws.counts.weight_buf_access_bytes);
        // IS reads inputs least often.
        assert!(is.counts.input_buf_access_bytes < ws.counts.input_buf_access_bytes);
    }

    #[test]
    fn noc_adds_energy_and_can_bound_latency() {
        let base = CostModel::default();
        let with_noc = CostModel::default().with_noc(NocModel::nm40());
        let m = good_mapping();
        let e0 = base.evaluate(&arch(), &layer(), &m).unwrap();
        let e1 = with_noc.evaluate(&arch(), &layer(), &m).unwrap();
        assert_eq!(e0.energy.noc_pj, 0.0);
        assert!(e1.energy.noc_pj > 0.0);
        assert!(e1.energy_pj > e0.energy_pj);
        assert!(e1.latency_cycles >= e0.latency_cycles);
        // The non-NoC components are identical.
        assert_eq!(e0.energy.dram_pj, e1.energy.dram_pj);
        assert_eq!(e0.counts, e1.counts);
    }

    #[test]
    fn display_shows_key_numbers() {
        let eval = CostModel::default()
            .evaluate(&arch(), &layer(), &good_mapping())
            .unwrap();
        let txt = eval.to_string();
        assert!(txt.contains("latency"));
        assert!(txt.contains("edp"));
    }
}
