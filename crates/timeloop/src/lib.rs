#![deny(missing_docs)]
//! Analytical latency/energy cost model for spatial DNN accelerators, in
//! the spirit of Timeloop (Parashar et al., ISPASS 2019).
//!
//! The VAESA paper scores every candidate design with Timeloop; this crate
//! provides the equivalent: a deterministic analytical model that maps a
//! `(architecture, layer, mapping)` triple to latency, energy, and area.
//!
//! - [`Mapping`]: Simba-style weight-stationary loop-nest tiling (spatial K
//!   over PEs, spatial C over MAC lanes, two temporal tile levels).
//! - [`CostModel`] / [`Evaluation`]: tile-reuse data-movement analysis with
//!   capacity checks, 40 nm-inspired per-access energies that grow with
//!   buffer capacity, and compute/bandwidth-bound latency.
//! - [`EnergyModel`]: the technology constants.
//!
//! The substitution from the real Timeloop is documented in the repository's
//! `DESIGN.md`: the paper only consumes `(latency, energy)` labels, so any
//! deterministic, discrete-input cost surface with realistic structure
//! (buffer-fit cliffs, DRAM-refetch tradeoffs, utilization plateaus)
//! exercises the same code paths in the VAE and DSE stack.

mod energy;
mod mapping;
mod model;
mod noc;

pub use energy::EnergyModel;
pub use mapping::{Dataflow, Mapping, MappingError};
pub use model::{AccessCounts, CostModel, EnergyBreakdown, EvalError, Evaluation};
pub use noc::NocModel;
