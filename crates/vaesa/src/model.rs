use rand::Rng;
use serde::{Deserialize, Serialize};
use vaesa_nn::{randn, Activation, Graph, Mlp, MlpPass, Tensor, VarId};

/// Hyperparameters of the VAESA model (§III-B1, §IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VaesaConfig {
    /// Latent dimensionality (the paper selects 4; 2 is used for
    /// visualization).
    pub latent_dim: usize,
    /// Weight α on the KL-divergence loss term (the paper selects 1e-4).
    pub alpha: f64,
    /// Encoder hidden-layer widths (decoder mirrors them).
    pub encoder_hidden: Vec<usize>,
    /// Predictor hidden-layer widths.
    pub predictor_hidden: Vec<usize>,
}

impl VaesaConfig {
    /// The paper's configuration: 4-D latent space, α = 1e-4.
    pub fn paper() -> Self {
        VaesaConfig {
            latent_dim: 4,
            alpha: 1e-4,
            encoder_hidden: vec![32, 16],
            predictor_hidden: vec![64, 32],
        }
    }

    /// Same architecture with a different latent dimensionality.
    pub fn with_latent_dim(mut self, dz: usize) -> Self {
        assert!(dz >= 1, "latent dim must be at least 1");
        self.latent_dim = dz;
        self
    }

    /// Same architecture with a different KL weight.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        self.alpha = alpha;
        self
    }
}

impl Default for VaesaConfig {
    fn default() -> Self {
        VaesaConfig::paper()
    }
}

/// Number of hardware features (Table II parameters).
pub const HW_FEATURES: usize = 6;
/// Number of DNN-layer features (Table IV columns).
pub const LAYER_FEATURES: usize = 8;

/// The VAESA model: a symmetric MLP variational autoencoder over the
/// normalized hardware features, plus latency and energy predictor heads
/// conditioned on the latent point and the layer features (Figure 3).
///
/// All four networks train jointly; see [`crate::Trainer`].
#[derive(Debug, Clone)]
pub struct VaesaModel {
    config: VaesaConfig,
    /// Encoder `6 -> hidden -> 2·dz` (μ and raw log-variance heads).
    pub encoder: Mlp,
    /// Decoder `dz -> reversed hidden -> 6`, sigmoid output (features are
    /// normalized into `[0, 1)`).
    pub decoder: Mlp,
    /// Latency head `dz + 8 -> hidden -> 1`, linear output.
    pub latency_predictor: Mlp,
    /// Energy head `dz + 8 -> hidden -> 1`, linear output.
    pub energy_predictor: Mlp,
}

/// Graph node ids produced by one training forward pass; the trainer uses
/// them to read losses and route gradients.
#[derive(Debug)]
pub struct TrainStep {
    /// Total loss node (`L = L_recon + α·L_kld + L_lat + L_en`, Eq. 2).
    pub total: VarId,
    /// Reconstruction MSE node.
    pub recon: VarId,
    /// KL-divergence node.
    pub kld: VarId,
    /// Latency-predictor MSE node.
    pub latency: VarId,
    /// Energy-predictor MSE node.
    pub energy: VarId,
    /// Encoder pass (for gradient accumulation).
    pub encoder_pass: MlpPass,
    /// Decoder pass.
    pub decoder_pass: MlpPass,
    /// Latency-head pass.
    pub latency_pass: MlpPass,
    /// Energy-head pass.
    pub energy_pass: MlpPass,
    /// Input leaf ids in `(hw, layer, eps, lat, en)` order; the trainer
    /// reclaims these buffers via [`Graph::take_value`] to avoid per-batch
    /// allocations.
    pub input_leaves: [VarId; 5],
}

/// Reusable buffers for [`VaesaModel::predicted_edp_grad_batch`]: the graph
/// tape and the two input leaf tensors survive across calls, so the batched
/// gradient-descent hot loop performs no per-step graph or leaf allocations.
#[derive(Debug, Default)]
pub struct EdpGradBatch {
    g: Graph,
    zs: Tensor,
    layer_rep: Tensor,
}

impl VaesaModel {
    /// Builds a model with freshly initialized weights.
    pub fn new(config: VaesaConfig, rng: &mut impl Rng) -> Self {
        let dz = config.latent_dim;
        let mut enc_widths = vec![HW_FEATURES];
        enc_widths.extend(&config.encoder_hidden);
        enc_widths.push(2 * dz);
        let mut dec_widths = vec![dz];
        dec_widths.extend(config.encoder_hidden.iter().rev());
        dec_widths.push(HW_FEATURES);
        let mut pred_widths = vec![dz + LAYER_FEATURES];
        pred_widths.extend(&config.predictor_hidden);
        pred_widths.push(1);

        VaesaModel {
            encoder: Mlp::new(
                &enc_widths,
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            ),
            decoder: Mlp::new(&dec_widths, Activation::LeakyRelu, Activation::Sigmoid, rng),
            // Linear regression heads: labels are normalized into [0, 1),
            // but a sigmoid output would saturate (zero gradient) away from
            // the data region, stalling latent-space gradient descent.
            latency_predictor: Mlp::new(
                &pred_widths,
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            ),
            energy_predictor: Mlp::new(
                &pred_widths,
                Activation::LeakyRelu,
                Activation::Identity,
                rng,
            ),
            config,
        }
    }

    /// Reassembles a model from its parts (used by checkpoint loading).
    ///
    /// # Panics
    ///
    /// Panics if the networks' dimensions disagree with the config.
    pub fn from_parts(
        config: VaesaConfig,
        encoder: Mlp,
        decoder: Mlp,
        latency_predictor: Mlp,
        energy_predictor: Mlp,
    ) -> Self {
        let dz = config.latent_dim;
        assert_eq!(encoder.in_dim(), HW_FEATURES, "encoder input width");
        assert_eq!(encoder.out_dim(), 2 * dz, "encoder output width");
        assert_eq!(decoder.in_dim(), dz, "decoder input width");
        assert_eq!(decoder.out_dim(), HW_FEATURES, "decoder output width");
        assert_eq!(
            latency_predictor.in_dim(),
            dz + LAYER_FEATURES,
            "latency head input width"
        );
        assert_eq!(
            energy_predictor.in_dim(),
            dz + LAYER_FEATURES,
            "energy head input width"
        );
        VaesaModel {
            config,
            encoder,
            decoder,
            latency_predictor,
            energy_predictor,
        }
    }

    /// The model's hyperparameters.
    pub fn config(&self) -> &VaesaConfig {
        &self.config
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.config.latent_dim
    }

    /// Total trainable parameter count across all four networks.
    pub fn param_count(&self) -> usize {
        self.encoder.param_count()
            + self.decoder.param_count()
            + self.latency_predictor.param_count()
            + self.energy_predictor.param_count()
    }

    /// Runs the encoder on graph node `x`, returning `(μ, logσ²)` nodes.
    ///
    /// The raw log-variance head is squashed with `4·tanh(·)` so σ² stays in
    /// a numerically safe range while remaining differentiable.
    pub fn encode_nodes(&self, g: &mut Graph, x: VarId) -> (VarId, VarId, MlpPass) {
        let dz = self.config.latent_dim;
        let pass = self.encoder.forward(g, x);
        let mu = g.slice_cols(pass.output, 0, dz);
        let raw_lv = g.slice_cols(pass.output, dz, 2 * dz);
        let squashed = g.tanh(raw_lv);
        let log_var = g.scale(squashed, 4.0);
        (mu, log_var, pass)
    }

    /// One full training forward pass over a minibatch.
    ///
    /// `hw` is the `B x 6` normalized hardware batch, `layer` the `B x 8`
    /// normalized layer batch, `eps` a `B x dz` standard-normal tensor for
    /// the reparameterization trick, and `lat`/`en` the `B x 1` normalized
    /// labels.
    pub fn train_step(
        &self,
        g: &mut Graph,
        hw: Tensor,
        layer: Tensor,
        eps: Tensor,
        lat: Tensor,
        en: Tensor,
    ) -> TrainStep {
        let x = g.leaf(hw);
        let layer_id = g.leaf(layer);
        let eps_id = g.leaf(eps);
        let lat_target = g.leaf(lat);
        let en_target = g.leaf(en);

        let (mu, log_var, encoder_pass) = self.encode_nodes(g, x);

        // z = μ + ε ⊙ exp(½ logσ²)
        let half_lv = g.scale(log_var, 0.5);
        let sigma = g.exp(half_lv);
        let noise = g.mul(eps_id, sigma);
        let z = g.add(mu, noise);

        let decoder_pass = self.decoder.forward(g, z);
        let recon = g.mse(decoder_pass.output, x);
        let kld = g.kl_divergence(mu, log_var);

        let pred_in = g.concat_cols(z, layer_id);
        let latency_pass = self.latency_predictor.forward(g, pred_in);
        let energy_pass = self.energy_predictor.forward(g, pred_in);
        let latency = g.mse(latency_pass.output, lat_target);
        let energy = g.mse(energy_pass.output, en_target);

        let weighted_kld = g.scale(kld, self.config.alpha);
        let vae_loss = g.add(recon, weighted_kld);
        let pred_loss = g.add(latency, energy);
        let total = g.add(vae_loss, pred_loss);

        TrainStep {
            total,
            recon,
            kld,
            latency,
            energy,
            encoder_pass,
            decoder_pass,
            latency_pass,
            energy_pass,
            input_leaves: [x, layer_id, eps_id, lat_target, en_target],
        }
    }

    /// Deterministically encodes hardware features to latent means.
    ///
    /// `hw` is `B x 6` normalized; returns `B x dz`.
    pub fn encode_mean(&self, hw: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let x = g.leaf(hw.clone());
        let (mu, _, _) = self.encode_nodes(&mut g, x);
        g.value(mu).clone()
    }

    /// Encodes hardware features to `(μ, logσ²)`.
    pub fn encode_params(&self, hw: &Tensor) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let x = g.leaf(hw.clone());
        let (mu, lv, _) = self.encode_nodes(&mut g, x);
        (g.value(mu).clone(), g.value(lv).clone())
    }

    /// Decodes latent points to normalized hardware features (`B x 6`).
    pub fn decode(&self, z: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let zi = g.leaf(z.clone());
        let pass = self.decoder.forward(&mut g, zi);
        g.value(pass.output).clone()
    }

    /// Predicts `(normalized log-latency, normalized log-energy)` for latent
    /// points `z` (`B x dz`) under layer features `layer` (`B x 8`).
    pub fn predict(&self, z: &Tensor, layer: &Tensor) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let zi = g.leaf(z.clone());
        let li = g.leaf(layer.clone());
        let joined = g.concat_cols(zi, li);
        let lat = self.latency_predictor.forward(&mut g, joined);
        let en = self.energy_predictor.forward(&mut g, joined);
        (g.value(lat.output).clone(), g.value(en.output).clone())
    }

    /// Predicted log-EDP proxy and its gradient with respect to `z`.
    ///
    /// The proxy is `w_lat · lat̂ + w_en · ên` where the weights are the
    /// normalizers' log-range widths, making the proxy an affine function of
    /// predicted `ln(latency) + ln(energy) = ln(EDP)` — the quantity
    /// `vae_gd` descends (§III-C2).
    pub fn predicted_edp_grad(
        &self,
        z: &[f64],
        layer: &[f64],
        w_lat: f64,
        w_en: f64,
    ) -> (f64, Vec<f64>) {
        assert_eq!(z.len(), self.config.latent_dim, "latent dimension mismatch");
        assert_eq!(layer.len(), LAYER_FEATURES, "layer feature count mismatch");
        let mut g = Graph::new();
        let zi = g.leaf(Tensor::row_vector(z));
        let li = g.leaf(Tensor::row_vector(layer));
        let joined = g.concat_cols(zi, li);
        let lat = self.latency_predictor.forward(&mut g, joined);
        let en = self.energy_predictor.forward(&mut g, joined);
        let lat_w = g.scale(lat.output, w_lat);
        let en_w = g.scale(en.output, w_en);
        let sum = g.add(lat_w, en_w);
        let loss = g.sum_all(sum);
        let value = g.value(loss).get(0, 0);
        g.backward(loss);
        let grad = g
            .grad(zi)
            .expect("z receives a gradient")
            .clone()
            .into_vec();
        (value, grad)
    }

    /// Batched [`VaesaModel::predicted_edp_grad`]: proxy values and
    /// z-gradients for `batch` latent points stored row-major in `zs`
    /// (`zs.len() == batch * dz`), all under the same `layer` features.
    ///
    /// One `B x dz` forward and one backward pass replace `B` single-row
    /// graph builds. Every op on the predictor path is row-independent, so
    /// in the default f64 mode row `r` of both outputs is bit-identical to
    /// `predicted_edp_grad(&zs[r*dz..], ...)` at any thread count. Under
    /// `VAESA_PRECISION=f32` the f32 routing guard is shape-dependent (a
    /// wide batch amortizes the f32 conversion, a single row does not), so
    /// batch and single-row results agree only to the documented f32
    /// tolerances. The
    /// `scratch` buffers (graph tape and leaf tensors) are reclaimed after
    /// every call, so a descent loop allocates nothing per step.
    pub fn predicted_edp_grad_batch(
        &self,
        zs: &[f64],
        batch: usize,
        layer: &[f64],
        w_lat: f64,
        w_en: f64,
        scratch: &mut EdpGradBatch,
    ) -> (Vec<f64>, Vec<f64>) {
        let dz = self.config.latent_dim;
        assert_eq!(zs.len(), batch * dz, "latent batch layout mismatch");
        assert_eq!(layer.len(), LAYER_FEATURES, "layer feature count mismatch");
        if batch == 0 {
            return (Vec::new(), Vec::new());
        }

        scratch.zs.copy_from_flat(batch, dz, zs);
        scratch.layer_rep.resize_uninit(batch, LAYER_FEATURES);
        for row in scratch.layer_rep.as_mut_slice().chunks_mut(LAYER_FEATURES) {
            row.copy_from_slice(layer);
        }

        let g = &mut scratch.g;
        g.reset();
        let zi = g.leaf(std::mem::replace(&mut scratch.zs, Tensor::zeros(0, 0)));
        let li = g.leaf(std::mem::replace(
            &mut scratch.layer_rep,
            Tensor::zeros(0, 0),
        ));
        let joined = g.concat_cols(zi, li);
        let lat = self.latency_predictor.forward(g, joined);
        let en = self.energy_predictor.forward(g, joined);
        let lat_w = g.scale(lat.output, w_lat);
        let en_w = g.scale(en.output, w_en);
        let sum = g.add(lat_w, en_w);
        let loss = g.sum_all(sum);
        // Per-row proxy values: `loss` sums the B x 1 column, so reading the
        // column itself gives each row's scalar (for B = 1 this is exactly
        // the single-row path's `loss` value).
        let values = g.value(sum).as_slice().to_vec();
        g.backward(loss);
        let grads = g
            .grad(zi)
            .expect("z receives a gradient")
            .as_slice()
            .to_vec();
        scratch.zs = g.take_value(zi);
        scratch.layer_rep = g.take_value(li);
        (values, grads)
    }

    /// Draws `n` latent samples from the prior `N(0, I)`.
    pub fn sample_prior(&self, n: usize, rng: &mut impl Rng) -> Tensor {
        randn(n, self.config.latent_dim, rng)
    }

    /// Predicted whole-network log-EDP and its gradient with respect to `z`.
    ///
    /// The paper's §IV-D outlook: "a user who wants to quickly optimize an
    /// accelerator for an arbitrary neural network design could predict
    /// performance for the full network by summing latency and energy
    /// predictions for multiple layers." This implements that objective
    /// end-to-end differentiably:
    ///
    /// `ln( Σ_l exp(w_lat·lat̂_l + m_lat) ) + ln( Σ_l exp(w_en·ên_l + m_en) )`
    ///
    /// i.e. the log of (sum of denormalized per-layer latencies) times
    /// (sum of denormalized per-layer energies) — exactly `ln` of the
    /// workload EDP the evaluator scores.
    ///
    /// `layers_normalized` is an `L x 8` tensor of normalized layer
    /// features; `(w, m)` pairs are the label normalizers' `(log_range,
    /// log_min)`.
    pub fn predicted_network_edp_grad(
        &self,
        z: &[f64],
        layers_normalized: &Tensor,
        lat_affine: (f64, f64),
        en_affine: (f64, f64),
    ) -> (f64, Vec<f64>) {
        assert_eq!(z.len(), self.config.latent_dim, "latent dimension mismatch");
        assert_eq!(
            layers_normalized.cols(),
            LAYER_FEATURES,
            "layer feature count mismatch"
        );
        let n_layers = layers_normalized.rows();
        assert!(n_layers > 0, "need at least one layer");

        let mut g = Graph::new();
        let zi = g.leaf(Tensor::row_vector(z));
        // Replicate z across L rows differentiably: ones(L,1) x z(1,dz).
        let ones = g.leaf(Tensor::fill(n_layers, 1, 1.0));
        let z_rep = g.matmul(ones, zi);
        let li = g.leaf(layers_normalized.clone());
        let joined = g.concat_cols(z_rep, li);

        let lat = self.latency_predictor.forward(&mut g, joined);
        let en = self.energy_predictor.forward(&mut g, joined);

        let mut raw_total = |pred: vaesa_nn::VarId, (w, m): (f64, f64)| {
            let scaled = g.scale(pred, w);
            let shifted = g.add_scalar(scaled, m);
            let raw = g.exp(shifted);
            let total = g.sum_all(raw);
            g.ln(total)
        };
        let log_lat_total = raw_total(lat.output, lat_affine);
        let log_en_total = raw_total(en.output, en_affine);
        let loss = g.add(log_lat_total, log_en_total);

        let value = g.value(loss).get(0, 0);
        g.backward(loss);
        let grad = g
            .grad(zi)
            .expect("z receives a gradient")
            .clone()
            .into_vec();
        (value, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(dz: usize) -> VaesaModel {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        VaesaModel::new(VaesaConfig::paper().with_latent_dim(dz), &mut rng)
    }

    #[test]
    fn shapes_follow_config() {
        let m = model(4);
        assert_eq!(m.latent_dim(), 4);
        assert_eq!(m.encoder.in_dim(), 6);
        assert_eq!(m.encoder.out_dim(), 8); // 2 * dz
        assert_eq!(m.decoder.in_dim(), 4);
        assert_eq!(m.decoder.out_dim(), 6);
        assert_eq!(m.latency_predictor.in_dim(), 12); // dz + 8
        assert!(m.param_count() > 1000);
    }

    #[test]
    fn encode_decode_shapes() {
        let m = model(2);
        let hw = Tensor::fill(5, 6, 0.5);
        let z = m.encode_mean(&hw);
        assert_eq!(z.shape(), (5, 2));
        let xhat = m.decode(&z);
        assert_eq!(xhat.shape(), (5, 6));
        // Sigmoid decoder output lies in (0, 1).
        assert!(xhat.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn log_variance_is_bounded() {
        let m = model(3);
        let hw = Tensor::fill(4, 6, 0.9);
        let (_, lv) = m.encode_params(&hw);
        assert!(lv.as_slice().iter().all(|&v| v.abs() <= 4.0));
    }

    #[test]
    fn train_step_losses_are_finite_and_positive() {
        let m = model(2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut g = Graph::new();
        let step = m.train_step(
            &mut g,
            Tensor::fill(8, 6, 0.3),
            Tensor::fill(8, 8, 0.6),
            randn(8, 2, &mut rng),
            Tensor::fill(8, 1, 0.4),
            Tensor::fill(8, 1, 0.7),
        );
        for id in [step.total, step.recon, step.latency, step.energy] {
            let v = g.value(id).get(0, 0);
            assert!(v.is_finite() && v >= 0.0, "loss {v}");
        }
        assert!(g.value(step.kld).get(0, 0).is_finite());
        // Total combines the parts per Eq. 2.
        let total = g.value(step.total).get(0, 0);
        let parts = g.value(step.recon).get(0, 0)
            + 1e-4 * g.value(step.kld).get(0, 0)
            + g.value(step.latency).get(0, 0)
            + g.value(step.energy).get(0, 0);
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn backward_reaches_all_networks() {
        let m = model(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut g = Graph::new();
        let step = m.train_step(
            &mut g,
            Tensor::fill(4, 6, 0.3),
            Tensor::fill(4, 8, 0.6),
            randn(4, 2, &mut rng),
            Tensor::fill(4, 1, 0.4),
            Tensor::fill(4, 1, 0.7),
        );
        g.backward(step.total);
        for pass in [
            &step.encoder_pass,
            &step.decoder_pass,
            &step.latency_pass,
            &step.energy_pass,
        ] {
            let touched = pass
                .param_ids
                .iter()
                .any(|&(w, b)| g.grad(w).is_some() || g.grad(b).is_some());
            assert!(touched, "a network received no gradient");
        }
    }

    #[test]
    fn predicted_edp_grad_matches_finite_difference() {
        let m = model(3);
        let z = [0.2, -0.4, 0.1];
        let layer = [0.5; 8];
        let (v, grad) = m.predicted_edp_grad(&z, &layer, 2.0, 3.0);
        assert!(v.is_finite());
        let eps = 1e-6;
        for i in 0..3 {
            let mut zp = z;
            zp[i] += eps;
            let (vp, _) = m.predicted_edp_grad(&zp, &layer, 2.0, 3.0);
            zp[i] = z[i] - eps;
            let (vm, _) = m.predicted_edp_grad(&zp, &layer, 2.0, 3.0);
            let numeric = (vp - vm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-6,
                "dim {i}: analytic {} vs numeric {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn predicted_edp_grad_batch_matches_single_row_bitwise() {
        let m = model(3);
        let layer = [0.5; 8];
        let zs: Vec<Vec<f64>> = vec![
            vec![0.2, -0.4, 0.1],
            vec![-1.3, 0.0, 0.7],
            vec![0.0, 0.0, 0.0],
            vec![2.0, -2.0, 0.5],
            vec![0.31, 0.77, -0.09],
        ];
        let flat: Vec<f64> = zs.iter().flatten().copied().collect();
        let mut scratch = EdpGradBatch::default();
        // Run twice through the same scratch to exercise buffer reclaim.
        for _ in 0..2 {
            let (values, grads) =
                m.predicted_edp_grad_batch(&flat, zs.len(), &layer, 2.0, 3.0, &mut scratch);
            assert_eq!(values.len(), zs.len());
            assert_eq!(grads.len(), flat.len());
            for (r, z) in zs.iter().enumerate() {
                let (v, g) = m.predicted_edp_grad(z, &layer, 2.0, 3.0);
                assert_eq!(values[r].to_bits(), v.to_bits(), "row {r} value");
                for (d, (bg, sg)) in grads[r * 3..(r + 1) * 3].iter().zip(&g).enumerate() {
                    assert_eq!(bg.to_bits(), sg.to_bits(), "row {r} grad dim {d}");
                }
            }
        }
    }

    #[test]
    fn predicted_edp_grad_batch_empty_batch() {
        let m = model(2);
        let mut scratch = EdpGradBatch::default();
        let (v, g) = m.predicted_edp_grad_batch(&[], 0, &[0.5; 8], 1.0, 1.0, &mut scratch);
        assert!(v.is_empty() && g.is_empty());
    }

    #[test]
    fn prior_samples_have_right_shape() {
        let m = model(4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let z = m.sample_prior(10, &mut rng);
        assert_eq!(z.shape(), (10, 4));
    }

    #[test]
    fn deterministic_construction_per_seed() {
        let a = model(4);
        let b = model(4);
        assert_eq!(a.encoder.flatten_params(), b.encoder.flatten_params());
        assert_eq!(a.decoder.flatten_params(), b.decoder.flatten_params());
    }
}
