//! Shared test fixture for the flow and driver tests: a coarse design
//! space, a cached scheduler, a two-layer workload, and a small trained
//! 2-D model over a 50-point dataset.

use crate::flows::HardwareEvaluator;
use crate::{
    Dataset, DatasetBuilder, InputPredictors, TrainConfig, Trainer, VaesaConfig, VaesaModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_accel::{workloads, DesignSpace, LayerShape};
use vaesa_cosa::CachedScheduler;

pub(crate) struct Fixture {
    pub space: DesignSpace,
    pub scheduler: CachedScheduler,
    pub layers: Vec<LayerShape>,
}

impl Fixture {
    pub fn new() -> Self {
        Fixture {
            space: DesignSpace::coarse(4),
            scheduler: CachedScheduler::default(),
            layers: vec![
                workloads::alexnet()[2].clone(),
                workloads::resnet50()[5].clone(),
            ],
        }
    }

    pub fn evaluator(&self) -> HardwareEvaluator<'_> {
        HardwareEvaluator::new(&self.space, &self.scheduler, &self.layers)
    }

    pub fn dataset(&self) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        DatasetBuilder::new(&self.space, self.layers.clone())
            .random_configs(50)
            .grid_per_axis(0)
            .build(&self.scheduler, &mut rng)
    }

    pub fn trained_model(&self, ds: &Dataset) -> VaesaModel {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 32,
            learning_rate: 3e-3,
        };
        Trainer::new(cfg).train_vae(&mut model, ds, &mut rng);
        model
    }

    pub fn trained_input_predictors(&self, ds: &Dataset) -> InputPredictors {
        let mut rng = ChaCha8Rng::seed_from_u64(27);
        let mut preds = InputPredictors::new(&[32, 16], &mut rng);
        preds.train(
            &Trainer::new(TrainConfig {
                epochs: 20,
                batch_size: 32,
                learning_rate: 3e-3,
            }),
            ds,
            &mut rng,
        );
        preds
    }
}
