//! The single evaluation driver behind every DSE flow: one
//! [`DseDriver::run`] call covers each [`SearchEngine`] in each of the two
//! evaluation modes ([`SpaceMode`]).
//!
//! The two modes are the paper's two ways of judging a candidate:
//!
//! - [`SpaceMode::Direct`] searches the normalized input box `[0, 1]^6`;
//!   each point is denormalized, snapped to the nearest legal design, and
//!   scheduled.
//! - [`SpaceMode::Latent`] searches the VAE latent box
//!   ([`latent_box`](crate::flows::latent_box)); each point is decoded
//!   through the trained decoder, snapped, and scheduled.
//!
//! Both funnel into [`HardwareEvaluator`] and its cached scheduler, and
//! both expose a differentiable predictor proxy to gradient engines when
//! the driver is configured with a layer (and, in direct mode, trained
//! input-space predictors). Batch scoring fans out across the
//! [`vaesa_par`] pool with results in input order, so traces stay
//! bit-identical at any thread count (the PR 1 determinism policy).

use crate::flows::{
    decode_to_config, decode_to_configs, latent_box, proxy_weights, score_batch, HardwareEvaluator,
    Metric,
};
use crate::{Dataset, EdpGradBatch, InputPredictors, Normalizer, VaesaModel};
use rand::RngCore;
use vaesa_accel::LayerShape;
use vaesa_dse::{
    BatchDifferentiableObjective, BoxSpace, Objective, SearchEngine, SearchObjective, Trace,
};

/// Which space a [`DseDriver::run`] searches, and therefore how candidate
/// points become hardware designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceMode {
    /// The normalized design-feature box `[0, 1]^6`: denormalize + snap.
    Direct,
    /// The VAE latent box: decode through the model + snap. Trace labels
    /// get a `vae_` prefix (`vae_bo`, `vae_gd`, ...).
    Latent,
}

/// Everything needed to run any engine in any mode against one workload:
/// the evaluator (space + scheduler + layers + metric), the feature
/// normalizer, and — when available — the trained model, the dataset, the
/// proxy layer for gradient engines, and input-space predictors.
///
/// Built once per experiment and reused across engines; the legacy
/// `flows::run_*` entry points are thin shims over this type.
#[derive(Debug)]
pub struct DseDriver<'a> {
    evaluator: &'a HardwareEvaluator<'a>,
    hw_norm: &'a Normalizer,
    dataset: Option<&'a Dataset>,
    model: Option<&'a VaesaModel>,
    gd_layer: Option<&'a LayerShape>,
    predictors: Option<&'a InputPredictors>,
}

impl<'a> DseDriver<'a> {
    /// A driver with the full dataset context (normalizers for both spaces
    /// and the statistics the gradient proxies need).
    pub fn new(evaluator: &'a HardwareEvaluator<'a>, dataset: &'a Dataset) -> Self {
        DseDriver {
            evaluator,
            hw_norm: &dataset.hw_norm,
            dataset: Some(dataset),
            model: None,
            gd_layer: None,
            predictors: None,
        }
    }

    /// A direct-mode-only driver from just a feature normalizer, for
    /// callers without a dataset in scope. Latent mode and gradient
    /// engines need [`DseDriver::new`].
    pub fn direct(evaluator: &'a HardwareEvaluator<'a>, hw_norm: &'a Normalizer) -> Self {
        DseDriver {
            evaluator,
            hw_norm,
            dataset: None,
            model: None,
            gd_layer: None,
            predictors: None,
        }
    }

    /// Enables [`SpaceMode::Latent`] with a trained model.
    pub fn with_model(mut self, model: &'a VaesaModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Enables gradient engines: this layer drives the differentiable
    /// predictor proxy (the evaluator still scores the full workload).
    pub fn with_gd_layer(mut self, layer: &'a LayerShape) -> Self {
        self.gd_layer = Some(layer);
        self
    }

    /// Enables gradient engines in direct mode with input-space predictors.
    pub fn with_input_predictors(mut self, predictors: &'a InputPredictors) -> Self {
        self.predictors = Some(predictors);
        self
    }

    /// Runs `engine` over the chosen space for exactly `budget` true
    /// evaluations and returns its trace, labeled `engine.name()` in
    /// direct mode and `vae_<name>` in latent mode.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is latent without [`DseDriver::with_model`] (and a
    /// dataset), or if `engine` needs a gradient proxy the driver is not
    /// configured for.
    pub fn run(
        &self,
        engine: &dyn SearchEngine,
        mode: SpaceMode,
        budget: usize,
        rng: &mut dyn RngCore,
    ) -> Trace {
        // One span per driver call (the chokepoint every DSE flow funnels
        // through), plus the trace's trajectory/budget record — search
        // itself runs uninstrumented.
        let run_span = vaesa_obs::global().span("dse/run");
        let trace = match mode {
            SpaceMode::Direct => {
                let space = BoxSpace::unit(crate::HW_FEATURES);
                let proxy = match (self.predictors, self.gd_layer, self.dataset) {
                    (Some(p), Some(layer), Some(ds)) => {
                        Some(InputProxy::new(p, ds, layer, self.evaluator.metric()))
                    }
                    _ => None,
                };
                let mut objective = DirectObjective {
                    evaluator: self.evaluator,
                    hw_norm: self.hw_norm,
                    proxy,
                };
                engine.run(&space, &mut objective, budget, rng)
            }
            SpaceMode::Latent => {
                let model = self
                    .model
                    .expect("latent mode needs DseDriver::with_model(..)");
                let dataset = self
                    .dataset
                    .expect("latent mode needs DseDriver::new(.., dataset)");
                let space = latent_box(model, dataset);
                let proxy = self
                    .gd_layer
                    .map(|l| BatchEdpObjective::new(model, dataset, l, self.evaluator.metric()));
                let mut objective = LatentObjective {
                    evaluator: self.evaluator,
                    model,
                    hw_norm: &dataset.hw_norm,
                    proxy,
                };
                let mut trace = engine.run(&space, &mut objective, budget, rng);
                trace.set_label(format!("vae_{}", engine.name()));
                trace
            }
        };
        run_span.finish();
        vaesa_dse::record_trace(&trace);
        trace
    }
}

/// Direct-mode objective: denormalize + snap + schedule.
struct DirectObjective<'a> {
    evaluator: &'a HardwareEvaluator<'a>,
    hw_norm: &'a Normalizer,
    proxy: Option<InputProxy<'a>>,
}

impl Objective for DirectObjective<'_> {
    fn dim(&self) -> usize {
        crate::HW_FEATURES
    }

    fn evaluate(&mut self, x: &[f64]) -> Option<f64> {
        self.evaluator.edp_of_normalized(x, self.hw_norm)
    }
}

impl SearchObjective for DirectObjective<'_> {
    fn evaluate_batch(&mut self, xs: &[Vec<f64>]) -> Vec<Option<f64>> {
        score_batch(self.evaluator, self.hw_norm, xs)
    }

    fn proxy(&mut self) -> Option<&mut dyn BatchDifferentiableObjective> {
        self.proxy
            .as_mut()
            .map(|p| p as &mut dyn BatchDifferentiableObjective)
    }
}

/// Latent-mode objective: decode + snap + schedule. Batches share one
/// decoder forward pass and fan scheduling out across the thread pool,
/// slot-equivalent to the scalar path
/// ([`decode_to_configs`] is row-equivalent to [`decode_to_config`]).
struct LatentObjective<'a> {
    evaluator: &'a HardwareEvaluator<'a>,
    model: &'a VaesaModel,
    hw_norm: &'a Normalizer,
    proxy: Option<BatchEdpObjective<'a>>,
}

impl Objective for LatentObjective<'_> {
    fn dim(&self) -> usize {
        self.model.latent_dim()
    }

    fn evaluate(&mut self, z: &[f64]) -> Option<f64> {
        let config = decode_to_config(self.model, z, self.hw_norm, self.evaluator);
        self.evaluator.edp_of_config(&config)
    }
}

impl SearchObjective for LatentObjective<'_> {
    fn evaluate_batch(&mut self, zs: &[Vec<f64>]) -> Vec<Option<f64>> {
        let configs = decode_to_configs(self.model, zs, self.hw_norm, self.evaluator);
        vaesa_par::par_map(&configs, |c| self.evaluator.edp_of_config(c))
    }

    fn proxy(&mut self) -> Option<&mut dyn BatchDifferentiableObjective> {
        self.proxy
            .as_mut()
            .map(|p| p as &mut dyn BatchDifferentiableObjective)
    }
}

/// The batched `vae_gd` descent objective: one call produces proxy values
/// and z-gradients for a whole batch of latent points under a fixed layer,
/// reusing graph and leaf buffers across descent steps
/// ([`VaesaModel::predicted_edp_grad_batch`]).
///
/// Public so the benchmark harness can drive
/// [`GradientDescent::run_batch`](vaesa_dse::GradientDescent::run_batch)
/// with the exact objective the flow uses.
#[derive(Debug)]
pub struct BatchEdpObjective<'a> {
    model: &'a VaesaModel,
    layer_n: Vec<f64>,
    w_lat: f64,
    w_en: f64,
    scratch: EdpGradBatch,
}

impl<'a> BatchEdpObjective<'a> {
    /// Builds the objective for one layer under the evaluator's metric.
    pub fn new(
        model: &'a VaesaModel,
        dataset: &Dataset,
        layer: &LayerShape,
        metric: Metric,
    ) -> Self {
        let layer_n = dataset.layer_norm.transform_row(&layer.features());
        let (w_lat, w_en) = proxy_weights(metric, dataset);
        BatchEdpObjective {
            model,
            layer_n,
            w_lat,
            w_en,
            scratch: EdpGradBatch::default(),
        }
    }
}

impl BatchDifferentiableObjective for BatchEdpObjective<'_> {
    fn dim(&self) -> usize {
        self.model.latent_dim()
    }

    fn evaluate_with_grad_batch(&mut self, xs: &[f64], batch: usize) -> (Vec<f64>, Vec<f64>) {
        self.model.predicted_edp_grad_batch(
            xs,
            batch,
            &self.layer_n,
            self.w_lat,
            self.w_en,
            &mut self.scratch,
        )
    }
}

/// Direct-mode gradient proxy over the input-space predictors; rows are
/// evaluated independently, so the batch is equivalent to per-point calls.
struct InputProxy<'a> {
    predictors: &'a InputPredictors,
    layer_n: Vec<f64>,
    w_lat: f64,
    w_en: f64,
}

impl<'a> InputProxy<'a> {
    fn new(
        predictors: &'a InputPredictors,
        dataset: &Dataset,
        layer: &LayerShape,
        metric: Metric,
    ) -> Self {
        let layer_n = dataset.layer_norm.transform_row(&layer.features());
        let (w_lat, w_en) = proxy_weights(metric, dataset);
        InputProxy {
            predictors,
            layer_n,
            w_lat,
            w_en,
        }
    }
}

impl BatchDifferentiableObjective for InputProxy<'_> {
    fn dim(&self) -> usize {
        crate::HW_FEATURES
    }

    fn evaluate_with_grad_batch(&mut self, xs: &[f64], batch: usize) -> (Vec<f64>, Vec<f64>) {
        let dim = crate::HW_FEATURES;
        let mut values = Vec::with_capacity(batch);
        let mut grads = Vec::with_capacity(batch * dim);
        for b in 0..batch {
            let row = &xs[b * dim..(b + 1) * dim];
            let (v, g) =
                self.predictors
                    .predicted_edp_grad(row, &self.layer_n, self.w_lat, self.w_en);
            values.push(v);
            grads.extend_from_slice(&g);
        }
        (values, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_cosa::CachedScheduler;
    use vaesa_dse::{engine_by_name, FnDifferentiable, GdConfig, GdEngine, GradientDescent};

    /// The random driver path must stay bit-identical to the serial
    /// draw-score-record reference at any thread count (the PR 1 `to_bits`
    /// equivalence guarantee, now pointed at the driver).
    #[test]
    fn random_driver_matches_serial_reference_trace() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();

        // Serial reference: the pre-driver `run_random` loop.
        let space = BoxSpace::unit(crate::HW_FEATURES);
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let mut serial = Trace::new("random");
        for _ in 0..25 {
            let x = space.sample(&mut rng);
            let v = ev.edp_of_normalized(&x, &ds.hw_norm);
            serial.record(x, v);
        }

        let driver = DseDriver::new(&ev, &ds);
        let engine = engine_by_name("random").unwrap();
        for threads in ["1", "3", "8"] {
            std::env::set_var("VAESA_THREADS", threads);
            let par = driver.run(
                engine.as_ref(),
                SpaceMode::Direct,
                25,
                &mut ChaCha8Rng::seed_from_u64(60),
            );
            assert_eq!(serial, par, "threads = {threads}");
        }
        std::env::remove_var("VAESA_THREADS");
    }

    /// The latent GD driver path must stay bit-identical to the serial
    /// per-start descent reference (the pre-driver `run_vae_gd` loop) at
    /// 1/2/5 threads.
    #[test]
    fn vae_gd_driver_matches_serial_reference_trace() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let layer = f.layers[0].clone();
        let single = vec![layer.clone()];
        let ev = HardwareEvaluator::new(&f.space, &f.scheduler, &single);
        let gd_cfg = GdConfig {
            steps: 30,
            ..GdConfig::default()
        };

        // Serial reference: one full descent per sample, one scheduler
        // query per sample, samples drawn one at a time.
        let layer_n = ds.layer_norm.transform_row(&layer.features());
        let (w_lat, w_en) = proxy_weights(ev.metric(), &ds);
        let space = latent_box(&model, &ds);
        let gd = GradientDescent::new(space.clone(), gd_cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let mut serial = Trace::new("vae_gd");
        for _ in 0..4 {
            let start = space.sample(&mut rng);
            let mut objective = FnDifferentiable::new(model.latent_dim(), |z: &[f64]| {
                model.predicted_edp_grad(z, &layer_n, w_lat, w_en)
            });
            let path = gd.run(&mut objective, &start);
            let z = path.final_point();
            let config = decode_to_config(&model, z, &ds.hw_norm, &ev);
            serial.record(z.to_vec(), ev.edp_of_config(&config));
        }

        let driver = DseDriver::new(&ev, &ds)
            .with_model(&model)
            .with_gd_layer(&layer);
        let engine = GdEngine { config: gd_cfg };
        for threads in ["1", "2", "5"] {
            std::env::set_var("VAESA_THREADS", threads);
            let batched = driver.run(
                &engine,
                SpaceMode::Latent,
                4,
                &mut ChaCha8Rng::seed_from_u64(61),
            );
            assert_eq!(serial, batched, "threads = {threads}");
        }
        std::env::remove_var("VAESA_THREADS");
    }

    /// Every engine runs through the driver in both modes, spends its
    /// budget exactly, and never over-calls the scheduler: with a
    /// single-layer workload, scheduler lookups == budget.
    #[test]
    fn all_engines_run_in_both_modes_within_budget() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let preds = f.trained_input_predictors(&ds);
        let layer = f.layers[0].clone();
        let single = vec![layer.clone()];
        let budget = 12usize;

        for name in ["random", "bo", "evo", "sa", "cd", "gd"] {
            let engine = engine_by_name(name).unwrap();
            for mode in [SpaceMode::Direct, SpaceMode::Latent] {
                // Fresh scheduler per run so lookup deltas are exact.
                let scheduler = CachedScheduler::default();
                let ev = HardwareEvaluator::new(&f.space, &scheduler, &single);
                let driver = DseDriver::new(&ev, &ds)
                    .with_model(&model)
                    .with_gd_layer(&layer)
                    .with_input_predictors(&preds);
                let mut rng = ChaCha8Rng::seed_from_u64(70);
                let trace = driver.run(engine.as_ref(), mode, budget, &mut rng);
                let want_label = match mode {
                    SpaceMode::Direct => name.to_string(),
                    SpaceMode::Latent => format!("vae_{name}"),
                };
                assert_eq!(trace.label(), want_label);
                assert_eq!(trace.len(), budget, "{want_label} trace length");
                let stats = scheduler.cache_stats();
                assert_eq!(
                    stats.hits + stats.misses,
                    budget as u64,
                    "{want_label} scheduler lookups"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "with_model")]
    fn latent_mode_without_model_panics() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let driver = DseDriver::new(&ev, &ds);
        let engine = engine_by_name("random").unwrap();
        let _ = driver.run(
            engine.as_ref(),
            SpaceMode::Latent,
            2,
            &mut ChaCha8Rng::seed_from_u64(1),
        );
    }

    #[test]
    fn input_proxy_batch_matches_per_point_calls() {
        let f = Fixture::new();
        let ds = f.dataset();
        let preds = f.trained_input_predictors(&ds);
        let layer = f.layers[0].clone();
        let mut proxy = InputProxy::new(&preds, &ds, &layer, Metric::Edp);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let space = BoxSpace::unit(crate::HW_FEATURES);
        let points: Vec<Vec<f64>> = (0..5).map(|_| space.sample(&mut rng)).collect();
        let flat: Vec<f64> = points.iter().flatten().copied().collect();
        let (values, grads) = proxy.evaluate_with_grad_batch(&flat, points.len());
        for (i, p) in points.iter().enumerate() {
            let layer_n = ds.layer_norm.transform_row(&layer.features());
            let (w_lat, w_en) = proxy_weights(Metric::Edp, &ds);
            let (v, g) = preds.predicted_edp_grad(p, &layer_n, w_lat, w_en);
            assert_eq!(values[i], v);
            assert_eq!(
                &grads[i * crate::HW_FEATURES..(i + 1) * crate::HW_FEATURES],
                &g[..]
            );
        }
    }
}
