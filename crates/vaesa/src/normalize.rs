use serde::{Deserialize, Serialize};
use vaesa_nn::Tensor;

/// Per-column log + min–max normalization (paper §IV-A4).
///
/// Hardware parameters, layer dimensions, and the latency/energy labels all
/// span orders of magnitude, so the paper first takes logarithms and then
/// min–max-scales each column into `[0, 1)`. `Normalizer` implements exactly
/// that: it is fit on *raw* positive values, stores per-column `min`/`range`
/// of the log values, and transforms both ways.
///
/// # Examples
///
/// ```
/// use vaesa::Normalizer;
///
/// let raw = vec![vec![1.0, 100.0], vec![10.0, 1000.0], vec![100.0, 10000.0]];
/// let norm = Normalizer::fit(&raw);
/// let t = norm.transform_row(&[10.0, 1000.0]);
/// assert!((t[0] - 0.5).abs() < 1e-12); // log-space midpoint
/// let back = norm.inverse_row(&t);
/// assert!((back[0] - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    log_min: Vec<f64>,
    log_range: Vec<f64>,
}

impl Normalizer {
    /// Range floor for (nearly) constant columns, which would otherwise
    /// divide by zero.
    const MIN_RANGE: f64 = 1e-9;

    /// Fits the normalizer on raw positive rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, ragged, or contains non-positive values
    /// (the log transform requires positivity; all modeled quantities are
    /// counts, sizes, or energies).
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no data");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "normalizer input rows are ragged"
        );
        let mut log_min = vec![f64::INFINITY; cols];
        let mut log_max = vec![f64::NEG_INFINITY; cols];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                assert!(v > 0.0, "normalizer requires positive values, got {v}");
                let lv = v.ln();
                log_min[c] = log_min[c].min(lv);
                log_max[c] = log_max[c].max(lv);
            }
        }
        let log_range = log_min
            .iter()
            .zip(&log_max)
            .map(|(&lo, &hi)| (hi - lo).max(Self::MIN_RANGE))
            .collect();
        Normalizer { log_min, log_range }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.log_min.len()
    }

    /// The per-column width of the fitted log range (`ln max − ln min`).
    ///
    /// Used by the gradient-descent flow to weight normalized latency and
    /// energy predictions into a quantity monotone in log-EDP.
    pub fn log_range(&self) -> &[f64] {
        &self.log_range
    }

    /// The per-column minimum of the fitted log values (`ln min`).
    ///
    /// Together with [`Normalizer::log_range`] this fully describes the
    /// affine map from normalized space back to log space.
    pub fn log_min(&self) -> &[f64] {
        &self.log_min
    }

    /// Normalizes one raw row into `[0, 1)` (values outside the fitted range
    /// extrapolate beyond `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fit or any value is
    /// non-positive.
    pub fn transform_row(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.cols(), "column count mismatch");
        raw.iter()
            .enumerate()
            .map(|(c, &v)| {
                assert!(v > 0.0, "normalizer requires positive values, got {v}");
                (v.ln() - self.log_min[c]) / self.log_range[c]
            })
            .collect()
    }

    /// Inverse of [`Normalizer::transform_row`].
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fit.
    pub fn inverse_row(&self, normalized: &[f64]) -> Vec<f64> {
        assert_eq!(normalized.len(), self.cols(), "column count mismatch");
        normalized
            .iter()
            .enumerate()
            .map(|(c, &v)| (v * self.log_range[c] + self.log_min[c]).exp())
            .collect()
    }

    /// Maps a normalized row back to *log-space* raw values (no exp), which
    /// is what nearest-log snapping in the design space consumes.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fit.
    pub fn inverse_row_log(&self, normalized: &[f64]) -> Vec<f64> {
        assert_eq!(normalized.len(), self.cols(), "column count mismatch");
        normalized
            .iter()
            .enumerate()
            .map(|(c, &v)| v * self.log_range[c] + self.log_min[c])
            .collect()
    }

    /// Normalizes a batch of raw rows into a tensor.
    pub fn transform_tensor(&self, rows: &[Vec<f64>]) -> Tensor {
        let cols = self.cols();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend(self.transform_row(row));
        }
        Tensor::from_vec(rows.len(), cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Vec<f64>> {
        vec![vec![4.0, 64.0], vec![8.0, 4096.0], vec![64.0, 256.0]]
    }

    #[test]
    fn transforms_into_unit_interval() {
        let n = Normalizer::fit(&sample_rows());
        for row in sample_rows() {
            for v in n.transform_row(&row) {
                assert!((0.0..=1.0).contains(&v), "value {v} outside [0,1]");
            }
        }
        // Extremes map to exactly 0 and 1.
        assert_eq!(n.transform_row(&[4.0, 64.0])[0], 0.0);
        assert_eq!(n.transform_row(&[64.0, 64.0])[0], 1.0);
    }

    #[test]
    fn round_trip_is_identity() {
        let n = Normalizer::fit(&sample_rows());
        for row in sample_rows() {
            let back = n.inverse_row(&n.transform_row(&row));
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() / a < 1e-9, "{a} != {b}");
            }
        }
    }

    #[test]
    fn log_midpoint_maps_to_half() {
        let n = Normalizer::fit(&[vec![1.0], vec![100.0]]);
        let t = n.transform_row(&[10.0]); // geometric mean of 1 and 100
        assert!((t[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverse_row_log_matches_ln_of_inverse() {
        let n = Normalizer::fit(&sample_rows());
        let t = n.transform_row(&[8.0, 256.0]);
        let logs = n.inverse_row_log(&t);
        let raws = n.inverse_row(&t);
        for (l, r) in logs.iter().zip(&raws) {
            assert!((l - r.ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let n = Normalizer::fit(&[vec![5.0], vec![5.0], vec![5.0]]);
        let t = n.transform_row(&[5.0]);
        assert_eq!(t[0], 0.0);
        let back = n.inverse_row(&t);
        assert!((back[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let n = Normalizer::fit(&[vec![1.0], vec![100.0]]);
        assert!(n.transform_row(&[1000.0])[0] > 1.0);
        assert!(n.transform_row(&[0.1])[0] < 0.0);
    }

    #[test]
    fn transform_tensor_shapes() {
        let n = Normalizer::fit(&sample_rows());
        let t = n.transform_tensor(&sample_rows());
        assert_eq!(t.shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_values_rejected() {
        let _ = Normalizer::fit(&[vec![0.0]]);
    }

    #[test]
    fn log_range_exposed() {
        let n = Normalizer::fit(&[vec![1.0], vec![(1f64).exp()]]);
        assert!((n.log_range()[0] - 1.0).abs() < 1e-12);
    }
}
