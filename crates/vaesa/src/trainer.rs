use crate::{Dataset, VaesaModel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use vaesa_nn::{randn_into, Activation, Adam, Batcher, Graph, Mlp, Tensor};

/// Training hyperparameters for the joint VAE + predictor pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
        }
    }
}

/// Mean per-epoch loss components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Reconstruction MSE.
    pub recon: f64,
    /// KL divergence (unweighted).
    pub kld: f64,
    /// Latency-predictor MSE.
    pub latency: f64,
    /// Energy-predictor MSE.
    pub energy: f64,
    /// Total weighted loss (Eq. 2).
    pub total: f64,
}

/// Per-epoch loss history of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct History {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// The final epoch's stats.
    ///
    /// # Panics
    ///
    /// Panics if the history is empty.
    pub fn last(&self) -> EpochStats {
        *self.epochs.last().expect("history has at least one epoch")
    }

    /// The reconstruction-loss curve (Figure 10 plots this for different
    /// latent dimensionalities).
    pub fn recon_curve(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.recon).collect()
    }
}

/// Trains VAESA models and baseline predictors.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trainer {
    /// Hyperparameters.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with explicit hyperparameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains the VAE and predictor heads end to end on `dataset`,
    /// minimizing `L = L_recon + α·L_kld + L_lat + L_en` (Eq. 2).
    ///
    /// Deterministic given the RNG state.
    pub fn train_vae(
        &self,
        model: &mut VaesaModel,
        dataset: &Dataset,
        rng: &mut impl Rng,
    ) -> History {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut adam = Adam::new(self.config.learning_rate);
        let batcher = Batcher::new(dataset.len(), self.config.batch_size);
        let dz = model.latent_dim();
        let mut history = History::default();

        // Scratch buffers cycled through the graph every batch: selected into
        // here, moved into graph leaves, and reclaimed via `take_value` after
        // the optimizer step — no per-batch tensor allocations.
        let mut g = Graph::new();
        let empty = || Tensor::zeros(0, 0);
        let mut bufs = [empty(), empty(), empty(), empty(), empty()];

        let train_span = vaesa_obs::global().span("train");
        for _ in 0..self.config.epochs {
            let _epoch_span = train_span.child("epoch");
            let mut sums = [0.0f64; 5];
            let mut batches = 0usize;
            for batch in batcher.epoch(rng) {
                let [hw_b, layer_b, eps_b, lat_b, en_b] = &mut bufs;
                dataset.hw.select_rows_into(&batch, hw_b);
                dataset.layers.select_rows_into(&batch, layer_b);
                dataset.latency.select_rows_into(&batch, lat_b);
                dataset.energy.select_rows_into(&batch, en_b);
                randn_into(batch.len(), dz, rng, eps_b);

                g.reset();
                let [hw, layer, eps, lat, en] = bufs
                    .each_mut()
                    .map(|b| std::mem::replace(b, Tensor::zeros(0, 0)));
                let step = model.train_step(&mut g, hw, layer, eps, lat, en);
                g.backward(step.total);

                sums[0] += g.value(step.recon).get(0, 0);
                sums[1] += g.value(step.kld).get(0, 0);
                sums[2] += g.value(step.latency).get(0, 0);
                sums[3] += g.value(step.energy).get(0, 0);
                sums[4] += g.value(step.total).get(0, 0);
                batches += 1;

                model.encoder.zero_grad();
                model.decoder.zero_grad();
                model.latency_predictor.zero_grad();
                model.energy_predictor.zero_grad();
                model.encoder.accumulate_grads(&g, &step.encoder_pass);
                model.decoder.accumulate_grads(&g, &step.decoder_pass);
                model
                    .latency_predictor
                    .accumulate_grads(&g, &step.latency_pass);
                model
                    .energy_predictor
                    .accumulate_grads(&g, &step.energy_pass);

                adam.begin_step();
                model.encoder.visit_params(&mut |p| adam.update(p));
                model.decoder.visit_params(&mut |p| adam.update(p));
                model
                    .latency_predictor
                    .visit_params(&mut |p| adam.update(p));
                model.energy_predictor.visit_params(&mut |p| adam.update(p));

                for (buf, &leaf) in bufs.iter_mut().zip(&step.input_leaves) {
                    *buf = g.take_value(leaf);
                }
            }
            let n = batches.max(1) as f64;
            let stats = EpochStats {
                recon: sums[0] / n,
                kld: sums[1] / n,
                latency: sums[2] / n,
                energy: sums[3] / n,
                total: sums[4] / n,
            };
            vaesa_obs::series("train.recon").push(stats.recon);
            vaesa_obs::series("train.kld").push(stats.kld);
            vaesa_obs::series("train.predictor_mse").push(stats.latency + stats.energy);
            vaesa_obs::series("train.total").push(stats.total);
            history.epochs.push(stats);
        }
        train_span.finish();
        history
    }
}

/// Stopping rule for [`Trainer::train_vae_until_converged`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// Epochs without sufficient improvement before stopping.
    pub patience: usize,
    /// Minimum relative improvement of the total loss that counts as
    /// progress (e.g. `0.01` = 1%).
    pub min_relative_delta: f64,
    /// Hard cap on epochs regardless of progress.
    pub max_epochs: usize,
}

impl Default for Convergence {
    fn default() -> Self {
        Convergence {
            patience: 8,
            min_relative_delta: 0.005,
            max_epochs: 400,
        }
    }
}

impl Trainer {
    /// Trains until the total loss converges (§III-B3: "we then train the
    /// model end-to-end until the loss function converges"), instead of for
    /// a fixed epoch count. The trainer's configured `epochs` field is
    /// ignored; `convergence.max_epochs` bounds the run.
    ///
    /// Returns the history up to the stopping epoch.
    pub fn train_vae_until_converged(
        &self,
        model: &mut VaesaModel,
        dataset: &Dataset,
        convergence: Convergence,
        rng: &mut impl Rng,
    ) -> History {
        assert!(convergence.patience >= 1, "patience must be at least 1");
        assert!(convergence.max_epochs >= 1, "max_epochs must be at least 1");
        let one_epoch = Trainer::new(TrainConfig {
            epochs: 1,
            ..self.config
        });
        let mut history = History::default();
        let mut best = f64::INFINITY;
        let mut since_improvement = 0usize;
        for _ in 0..convergence.max_epochs {
            let h = one_epoch.train_vae(model, dataset, rng);
            let stats = h.last();
            history.epochs.push(stats);
            if stats.total < best * (1.0 - convergence.min_relative_delta) {
                best = stats.total;
                since_improvement = 0;
            } else {
                since_improvement += 1;
                if since_improvement >= convergence.patience {
                    break;
                }
            }
        }
        history
    }
}

/// The `gd` baseline's performance predictors: latency and energy MLPs over
/// the *original* input space (6 hardware + 8 layer features), trained
/// separately from any VAE (§IV-D).
#[derive(Debug, Clone)]
pub struct InputPredictors {
    /// Latency head `14 -> hidden -> 1`, linear output.
    pub latency: Mlp,
    /// Energy head `14 -> hidden -> 1`, linear output.
    pub energy: Mlp,
}

impl InputPredictors {
    /// Builds fresh predictors with the given hidden widths.
    pub fn new(hidden: &[usize], rng: &mut impl Rng) -> Self {
        let mut widths = vec![crate::HW_FEATURES + crate::LAYER_FEATURES];
        widths.extend(hidden);
        widths.push(1);
        // Linear heads for the same reason as the VAESA predictors: sigmoid
        // saturation would zero the gradients `gd` descends.
        InputPredictors {
            latency: Mlp::new(&widths, Activation::LeakyRelu, Activation::Identity, rng),
            energy: Mlp::new(&widths, Activation::LeakyRelu, Activation::Identity, rng),
        }
    }

    /// Trains both heads on the dataset; returns the loss history
    /// (`recon`/`kld` fields are zero).
    pub fn train(&mut self, trainer: &Trainer, dataset: &Dataset, rng: &mut impl Rng) -> History {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut adam = Adam::new(trainer.config.learning_rate);
        let batcher = Batcher::new(dataset.len(), trainer.config.batch_size);
        let mut history = History::default();
        // Same buffer-cycling scheme as `Trainer::train_vae`.
        let mut g = Graph::new();
        let mut hw_buf = Tensor::zeros(0, 0);
        let mut layer_buf = Tensor::zeros(0, 0);
        let mut joined_buf = Tensor::zeros(0, 0);
        let mut lat_buf = Tensor::zeros(0, 0);
        let mut en_buf = Tensor::zeros(0, 0);
        for _ in 0..trainer.config.epochs {
            let mut lat_sum = 0.0;
            let mut en_sum = 0.0;
            let mut batches = 0usize;
            for batch in batcher.epoch(rng) {
                dataset.hw.select_rows_into(&batch, &mut hw_buf);
                dataset.layers.select_rows_into(&batch, &mut layer_buf);
                dataset.latency.select_rows_into(&batch, &mut lat_buf);
                dataset.energy.select_rows_into(&batch, &mut en_buf);
                hw_buf.concat_cols_into(&layer_buf, &mut joined_buf);

                g.reset();
                let take = |b: &mut Tensor| std::mem::replace(b, Tensor::zeros(0, 0));
                let x = g.leaf(take(&mut joined_buf));
                let lat_t = g.leaf(take(&mut lat_buf));
                let en_t = g.leaf(take(&mut en_buf));
                let lat_pass = self.latency.forward(&mut g, x);
                let en_pass = self.energy.forward(&mut g, x);
                let lat_loss = g.mse(lat_pass.output, lat_t);
                let en_loss = g.mse(en_pass.output, en_t);
                let total = g.add(lat_loss, en_loss);
                g.backward(total);

                lat_sum += g.value(lat_loss).get(0, 0);
                en_sum += g.value(en_loss).get(0, 0);
                batches += 1;

                self.latency.zero_grad();
                self.energy.zero_grad();
                self.latency.accumulate_grads(&g, &lat_pass);
                self.energy.accumulate_grads(&g, &en_pass);
                adam.begin_step();
                self.latency.visit_params(&mut |p| adam.update(p));
                self.energy.visit_params(&mut |p| adam.update(p));

                joined_buf = g.take_value(x);
                lat_buf = g.take_value(lat_t);
                en_buf = g.take_value(en_t);
            }
            let n = batches.max(1) as f64;
            history.epochs.push(EpochStats {
                recon: 0.0,
                kld: 0.0,
                latency: lat_sum / n,
                energy: en_sum / n,
                total: (lat_sum + en_sum) / n,
            });
        }
        history
    }

    /// Predicted log-EDP proxy and gradient with respect to the 6 hardware
    /// features (layer features held fixed), for the `gd` baseline.
    pub fn predicted_edp_grad(
        &self,
        hw: &[f64],
        layer: &[f64],
        w_lat: f64,
        w_en: f64,
    ) -> (f64, Vec<f64>) {
        assert_eq!(hw.len(), crate::HW_FEATURES, "hardware feature count");
        assert_eq!(layer.len(), crate::LAYER_FEATURES, "layer feature count");
        let mut g = Graph::new();
        let x = g.leaf(Tensor::row_vector(hw));
        let l = g.leaf(Tensor::row_vector(layer));
        let joined = g.concat_cols(x, l);
        let lat = self.latency.forward(&mut g, joined);
        let en = self.energy.forward(&mut g, joined);
        let lat_w = g.scale(lat.output, w_lat);
        let en_w = g.scale(en.output, w_en);
        let sum = g.add(lat_w, en_w);
        let loss = g.sum_all(sum);
        let value = g.value(loss).get(0, 0);
        g.backward(loss);
        let grad = g.grad(x).expect("hw receives gradient").clone().into_vec();
        (value, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetBuilder, VaesaConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_accel::{workloads, DesignSpace};
    use vaesa_cosa::CachedScheduler;

    fn dataset() -> Dataset {
        let space = DesignSpace::coarse(4);
        let layers = vec![
            workloads::alexnet()[2].clone(),
            workloads::resnet50()[5].clone(),
        ];
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        DatasetBuilder::new(&space, layers)
            .random_configs(60)
            .grid_per_axis(0)
            .build(&scheduler, &mut rng)
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            learning_rate: 3e-3,
        }
    }

    #[test]
    fn vae_training_reduces_losses() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        let history = Trainer::new(quick_config()).train_vae(&mut model, &ds, &mut rng);
        let first = history.epochs[0];
        let last = history.last();
        assert!(
            last.recon < first.recon * 0.7,
            "recon {} -> {}",
            first.recon,
            last.recon
        );
        assert!(last.total < first.total, "total did not improve");
        assert_eq!(history.recon_curve().len(), 30);
    }

    #[test]
    fn trained_model_reconstructs_better_than_untrained() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let untrained = VaesaModel::new(VaesaConfig::paper(), &mut rng);
        let mut trained = untrained.clone();
        let mut train_rng = ChaCha8Rng::seed_from_u64(13);
        Trainer::new(quick_config()).train_vae(&mut trained, &ds, &mut train_rng);

        let recon_err = |m: &VaesaModel| {
            let z = m.encode_mean(&ds.hw);
            let xhat = m.decode(&z);
            xhat.sub(&ds.hw).map(|v| v * v).mean()
        };
        assert!(recon_err(&trained) < recon_err(&untrained));
    }

    #[test]
    fn predictor_correlates_with_labels_after_training() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        let cfg = TrainConfig {
            epochs: 60,
            ..quick_config()
        };
        Trainer::new(cfg).train_vae(&mut model, &ds, &mut rng);
        let z = model.encode_mean(&ds.hw);
        let (lat_pred, _) = model.predict(&z, &ds.layers);
        let corr = vaesa_linalg::stats::pearson(lat_pred.as_slice(), ds.latency.as_slice())
            .expect("non-degenerate");
        assert!(corr > 0.5, "latency prediction correlation only {corr}");
    }

    #[test]
    fn input_predictors_train_and_differentiate() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let mut preds = InputPredictors::new(&[32, 16], &mut rng);
        let history = preds.train(&Trainer::new(quick_config()), &ds, &mut rng);
        assert!(history.last().total < history.epochs[0].total);

        let (v, grad) = preds.predicted_edp_grad(&[0.5; 6], &[0.5; 8], 1.0, 1.0);
        assert!(v.is_finite());
        assert_eq!(grad.len(), 6);
        assert!(grad.iter().any(|g| g.abs() > 0.0));
    }

    #[test]
    fn convergence_training_stops_before_the_cap() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 1, // ignored by the converged variant
            batch_size: 32,
            learning_rate: 3e-3,
        });
        let convergence = Convergence {
            patience: 4,
            min_relative_delta: 0.01,
            max_epochs: 200,
        };
        let history = trainer.train_vae_until_converged(&mut model, &ds, convergence, &mut rng);
        assert!(
            history.epochs.len() < 200,
            "never converged within the cap ({} epochs)",
            history.epochs.len()
        );
        assert!(history.epochs.len() >= 5, "stopped suspiciously early");
        // Loss actually went down substantially.
        assert!(history.last().total < history.epochs[0].total * 0.8);
    }

    #[test]
    fn convergence_respects_max_epochs() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        let trainer = Trainer::new(quick_config());
        let convergence = Convergence {
            patience: 50,
            min_relative_delta: 0.5, // absurdly strict: nothing counts
            max_epochs: 3,
        };
        let history = trainer.train_vae_until_converged(&mut model, &ds, convergence, &mut rng);
        assert_eq!(history.epochs.len(), 3);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = dataset();
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(16);
            let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
            let cfg = TrainConfig {
                epochs: 3,
                ..quick_config()
            };
            Trainer::new(cfg).train_vae(&mut model, &ds, &mut rng);
            model.encoder.flatten_params()
        };
        // Repeat runs must agree bit-for-bit, and the thread count must not
        // influence the result (fixed accumulation order in the kernels).
        let baseline = run();
        assert_eq!(baseline, run());
        for threads in ["1", "2", "5"] {
            std::env::set_var("VAESA_THREADS", threads);
            assert_eq!(
                baseline,
                run(),
                "trained params differ at {threads} threads"
            );
        }
        std::env::remove_var("VAESA_THREADS");
    }
}
