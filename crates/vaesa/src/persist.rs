//! Saving and loading trained artifacts.
//!
//! Training a VAESA model takes minutes while a DSE campaign may want to
//! reuse it across many workloads and sessions; the paper likewise trains
//! once and searches many times. Models and normalizers serialize to JSON
//! (human-inspectable, dependency-free).

use crate::{Normalizer, VaesaConfig, VaesaModel};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;
use vaesa_nn::Mlp;

/// A serializable snapshot of a trained model plus the normalizers needed
/// to use it (decode outputs and build predictor inputs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheckpoint {
    /// Model hyperparameters.
    pub config: VaesaConfig,
    /// Encoder weights.
    pub encoder: Mlp,
    /// Decoder weights.
    pub decoder: Mlp,
    /// Latency-head weights.
    pub latency_predictor: Mlp,
    /// Energy-head weights.
    pub energy_predictor: Mlp,
    /// Hardware-feature normalizer.
    pub hw_norm: Normalizer,
    /// Layer-feature normalizer.
    pub layer_norm: Normalizer,
    /// Latency-label normalizer.
    pub latency_norm: Normalizer,
    /// Energy-label normalizer.
    pub energy_norm: Normalizer,
}

impl ModelCheckpoint {
    /// Bundles a trained model with its dataset's normalizers.
    pub fn new(model: &VaesaModel, dataset: &crate::Dataset) -> Self {
        ModelCheckpoint {
            config: model.config().clone(),
            encoder: model.encoder.clone(),
            decoder: model.decoder.clone(),
            latency_predictor: model.latency_predictor.clone(),
            energy_predictor: model.energy_predictor.clone(),
            hw_norm: dataset.hw_norm.clone(),
            layer_norm: dataset.layer_norm.clone(),
            latency_norm: dataset.latency_norm.clone(),
            energy_norm: dataset.energy_norm.clone(),
        }
    }

    /// Reassembles the model.
    pub fn into_model(self) -> (VaesaModel, CheckpointNormalizers) {
        let model = VaesaModel::from_parts(
            self.config,
            self.encoder,
            self.decoder,
            self.latency_predictor,
            self.energy_predictor,
        );
        (
            model,
            CheckpointNormalizers {
                hw: self.hw_norm,
                layer: self.layer_norm,
                latency: self.latency_norm,
                energy: self.energy_norm,
            },
        )
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Serialize`] if serialization fails (it
    /// cannot for well-formed models, but the API is honest).
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string(self).map_err(PersistError::Serialize)
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Deserialize`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        serde_json::from_str(json).map_err(PersistError::Deserialize)
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = self.to_json()?;
        fs::write(path, json).map_err(PersistError::Io)
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure or
    /// [`PersistError::Deserialize`] for malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let json = fs::read_to_string(path).map_err(PersistError::Io)?;
        Self::from_json(&json)
    }
}

/// The normalizers recovered from a checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointNormalizers {
    /// Hardware-feature normalizer.
    pub hw: Normalizer,
    /// Layer-feature normalizer.
    pub layer: Normalizer,
    /// Latency-label normalizer.
    pub latency: Normalizer,
    /// Energy-label normalizer.
    pub energy: Normalizer,
}

/// Errors from checkpoint persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Serialization failed.
    Serialize(serde_json::Error),
    /// Deserialization failed.
    Deserialize(serde_json::Error),
    /// Filesystem I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Serialize(e) => write!(f, "failed to serialize checkpoint: {e}"),
            PersistError::Deserialize(e) => write!(f, "failed to deserialize checkpoint: {e}"),
            PersistError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Serialize(e) | PersistError::Deserialize(e) => Some(e),
            PersistError::Io(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_accel::{workloads, DesignSpace};
    use vaesa_cosa::CachedScheduler;
    use vaesa_nn::Tensor;

    fn fixture() -> (crate::Dataset, VaesaModel) {
        let space = DesignSpace::coarse(4);
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let ds = DatasetBuilder::new(&space, vec![workloads::alexnet()[2].clone()])
            .random_configs(20)
            .grid_per_axis(0)
            .build(&scheduler, &mut rng);
        let model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
        (ds, model)
    }

    #[test]
    fn json_roundtrip_preserves_behavior() {
        let (ds, model) = fixture();
        let ckpt = ModelCheckpoint::new(&model, &ds);
        let json = ckpt.to_json().unwrap();
        let (restored, norms) = ModelCheckpoint::from_json(&json).unwrap().into_model();

        let x = Tensor::fill(3, 6, 0.42);
        assert!(restored
            .encode_mean(&x)
            .approx_eq(&model.encode_mean(&x), 0.0));
        let z = Tensor::fill(3, restored.latent_dim(), 0.1);
        assert!(restored.decode(&z).approx_eq(&model.decode(&z), 0.0));
        let layer = Tensor::fill(3, 8, 0.5);
        let (l1, e1) = restored.predict(&z, &layer);
        let (l2, e2) = model.predict(&z, &layer);
        assert!(l1.approx_eq(&l2, 0.0));
        assert!(e1.approx_eq(&e2, 0.0));
        // Normalizers survive too.
        assert_eq!(norms.hw, ds.hw_norm);
        assert_eq!(norms.energy, ds.energy_norm);
    }

    #[test]
    fn file_roundtrip() {
        let (ds, model) = fixture();
        let ckpt = ModelCheckpoint::new(&model, &ds);
        let path = std::env::temp_dir().join("vaesa_ckpt_test.json");
        ckpt.save(&path).unwrap();
        let loaded = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(
            loaded.encoder.flatten_params(),
            model.encoder.flatten_params()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_json_is_rejected() {
        let err = ModelCheckpoint::from_json("{not json").unwrap_err();
        assert!(err.to_string().contains("deserialize"));
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = ModelCheckpoint::load("/nonexistent/vaesa.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
