//! Latency–energy Pareto analysis.
//!
//! The paper selects EDP as its metric "because it allows us to investigate
//! Pareto-optimal design points that trade off latency and energy"
//! (§IV-A2). This module makes that tradeoff explicit: given scored
//! designs, it extracts the latency–energy Pareto front and reports where
//! the EDP-optimal point sits on it.

use serde::{Deserialize, Serialize};
use vaesa_accel::ArchConfig;

/// A design point scored on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredDesign {
    /// The design.
    pub config: ArchConfig,
    /// Workload latency in cycles.
    pub latency: f64,
    /// Workload energy in pJ.
    pub energy: f64,
}

impl ScoredDesign {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.latency * self.energy
    }

    /// Returns `true` if `self` dominates `other` (no worse on both axes,
    /// strictly better on at least one).
    pub fn dominates(&self, other: &ScoredDesign) -> bool {
        self.latency <= other.latency
            && self.energy <= other.energy
            && (self.latency < other.latency || self.energy < other.energy)
    }
}

/// Indices of the non-dominated points, sorted by ascending latency.
///
/// Duplicate-scored points are all kept (they are mutually non-dominating).
/// O(n log n).
///
/// # Examples
///
/// ```
/// use vaesa::pareto::{pareto_front, ScoredDesign};
/// use vaesa_accel::DesignSpace;
///
/// let space = DesignSpace::paper();
/// let config = space.config_from_indices([0; 6]).unwrap();
/// let mk = |l, e| ScoredDesign { config, latency: l, energy: e };
/// let pts = [mk(1.0, 9.0), mk(5.0, 5.0), mk(9.0, 1.0), mk(6.0, 6.0)];
/// let front = pareto_front(&pts);
/// assert_eq!(front, vec![0, 1, 2]); // (6,6) is dominated by (5,5)
/// ```
pub fn pareto_front(points: &[ScoredDesign]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Ascending latency; ties broken by ascending energy so the scan keeps
    // the better of two equal-latency points first.
    order.sort_by(|&a, &b| {
        points[a]
            .latency
            .partial_cmp(&points[b].latency)
            .expect("finite latency")
            .then(
                points[a]
                    .energy
                    .partial_cmp(&points[b].energy)
                    .expect("finite energy"),
            )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for idx in order {
        let e = points[idx].energy;
        if e < best_energy {
            front.push(idx);
            best_energy = e;
        } else if e == best_energy
            && front
                .last()
                .is_some_and(|&l| points[l].latency == points[idx].latency)
        {
            // Exact duplicate of the incumbent: mutually non-dominating.
            front.push(idx);
        }
    }
    front
}

/// Summary of a front: its size, the EDP-optimal member, and the extreme
/// (latency-optimal, energy-optimal) members.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontSummary {
    /// Number of non-dominated points.
    pub size: usize,
    /// Index (into the original slice) of the minimum-EDP front member.
    pub edp_optimal: usize,
    /// Index of the minimum-latency front member.
    pub latency_optimal: usize,
    /// Index of the minimum-energy front member.
    pub energy_optimal: usize,
}

/// Summarizes the Pareto front of `points`.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn summarize_front(points: &[ScoredDesign]) -> FrontSummary {
    assert!(!points.is_empty(), "cannot summarize an empty set");
    let front = pareto_front(points);
    let by = |f: fn(&ScoredDesign) -> f64| {
        front
            .iter()
            .copied()
            .min_by(|&a, &b| f(&points[a]).partial_cmp(&f(&points[b])).expect("finite"))
            .expect("front non-empty")
    };
    FrontSummary {
        size: front.len(),
        edp_optimal: by(|p| p.edp()),
        latency_optimal: by(|p| p.latency),
        energy_optimal: by(|p| p.energy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaesa_accel::DesignSpace;

    fn pt(latency: f64, energy: f64) -> ScoredDesign {
        let space = DesignSpace::paper();
        ScoredDesign {
            config: space.config_from_indices([0; 6]).expect("valid"),
            latency,
            energy,
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(pt(1.0, 1.0).dominates(&pt(2.0, 2.0)));
        assert!(pt(1.0, 2.0).dominates(&pt(1.0, 3.0)));
        assert!(!pt(1.0, 1.0).dominates(&pt(1.0, 1.0))); // equal: no
        assert!(!pt(1.0, 3.0).dominates(&pt(2.0, 2.0))); // tradeoff: no
    }

    #[test]
    fn front_excludes_dominated_points() {
        let pts = [
            pt(1.0, 9.0),
            pt(2.0, 8.0),
            pt(3.0, 9.5), // dominated by (2, 8)
            pt(5.0, 3.0),
            pt(6.0, 3.0), // dominated by (5, 3)
            pt(9.0, 1.0),
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 3, 5]);
    }

    #[test]
    fn single_point_front() {
        let pts = [pt(3.0, 4.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
        let s = summarize_front(&pts);
        assert_eq!(s.size, 1);
        assert_eq!(s.edp_optimal, 0);
    }

    #[test]
    fn exact_duplicates_are_kept() {
        let pts = [pt(2.0, 2.0), pt(2.0, 2.0), pt(1.0, 5.0)];
        let front = pareto_front(&pts);
        assert!(front.contains(&0) && front.contains(&1) && front.contains(&2));
    }

    #[test]
    fn summary_identifies_the_extremes() {
        let pts = [pt(1.0, 100.0), pt(10.0, 5.0), pt(100.0, 1.0)];
        let s = summarize_front(&pts);
        assert_eq!(s.size, 3);
        assert_eq!(s.latency_optimal, 0);
        assert_eq!(s.energy_optimal, 2);
        assert_eq!(s.edp_optimal, 1); // EDP 50 vs 100 vs 100
    }

    #[test]
    fn every_non_front_point_is_dominated_by_some_front_point() {
        // Deterministic pseudo-random cloud.
        let mut pts = Vec::new();
        let mut state = 123456789u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) % 1000) as f64 + 1.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((state >> 33) % 1000) as f64 + 1.0;
            pts.push(pt(a, b));
        }
        let front = pareto_front(&pts);
        for i in 0..pts.len() {
            if front.contains(&i) {
                continue;
            }
            assert!(
                front.iter().any(|&f| pts[f].dominates(&pts[i])),
                "point {i} is neither on the front nor dominated"
            );
        }
        // Front members never dominate each other.
        for &a in &front {
            for &b in &front {
                assert!(!pts[a].dominates(&pts[b]), "front member dominated");
            }
        }
    }
}
