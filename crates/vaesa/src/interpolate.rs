//! Latent-space interpolation between the worst and best known designs
//! (Figures 7 and 8 of the paper).
//!
//! The paper probes latent-space smoothness by encoding the worst and best
//! training points, walking the segment between them (and a little past the
//! best point), and plotting the predicted EDP of each interpolated latent
//! point. A mostly monotone decreasing profile indicates gradient descent
//! started at a poor design would reach a good one.

use crate::{Dataset, VaesaModel};
use serde::{Deserialize, Serialize};
use vaesa_nn::Tensor;

/// One point along the worst→best interpolation axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterpolationPoint {
    /// Interpolation parameter: 0 at the worst point, 1 at the best point,
    /// > 1 past the best point.
    pub t: f64,
    /// The latent point.
    pub z: Vec<f64>,
    /// Predicted EDP (raw units) from the predictor heads.
    pub predicted_edp: f64,
}

/// The full interpolation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interpolation {
    /// Latent encoding of the worst training design.
    pub z_worst: Vec<f64>,
    /// Latent encoding of the best training design.
    pub z_best: Vec<f64>,
    /// Probed points, ordered by `t`.
    pub points: Vec<InterpolationPoint>,
}

impl Interpolation {
    /// Euclidean distance between the worst and best encodings (the paper
    /// reports 0.96 for its 2-D space and 2.58 for 4-D).
    pub fn worst_best_distance(&self) -> f64 {
        self.z_worst
            .iter()
            .zip(&self.z_best)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Fraction of consecutive point pairs (within `t <= 1`) where the
    /// predicted EDP does not increase — a scalar summary of how conducive
    /// the surface is to gradient descent.
    pub fn monotonicity(&self) -> f64 {
        let inner: Vec<&InterpolationPoint> =
            self.points.iter().filter(|p| p.t <= 1.0 + 1e-12).collect();
        if inner.len() < 2 {
            return 1.0;
        }
        let decreasing = inner
            .windows(2)
            .filter(|w| w[1].predicted_edp <= w[0].predicted_edp * (1.0 + 1e-12))
            .count();
        decreasing as f64 / (inner.len() - 1) as f64
    }
}

/// Interpolates between the dataset's worst and best designs in latent
/// space, predicting EDP for a given layer at each of `n_inner + n_beyond`
/// points (`n_inner` between worst and best, `n_beyond` past the best).
///
/// # Panics
///
/// Panics if `n_inner < 2` or the dataset is empty.
pub fn interpolate_worst_best(
    model: &VaesaModel,
    dataset: &Dataset,
    layer_raw: &[f64; 8],
    n_inner: usize,
    n_beyond: usize,
) -> Interpolation {
    assert!(n_inner >= 2, "need at least two interpolation points");
    let worst = &dataset.records[dataset.worst_index()];
    let best = &dataset.records[dataset.best_index()];
    let encode = |hw_raw: &[f64; 6]| {
        let normalized = dataset.hw_norm.transform_row(hw_raw);
        model
            .encode_mean(&Tensor::row_vector(&normalized))
            .into_vec()
    };
    let z_worst = encode(&worst.hw_raw);
    let z_best = encode(&best.hw_raw);

    let layer_n = dataset.layer_norm.transform_row(layer_raw);
    let layer_t = Tensor::row_vector(&layer_n);

    let mut points = Vec::with_capacity(n_inner + n_beyond);
    let total = n_inner + n_beyond;
    for i in 0..total {
        let t = i as f64 / (n_inner - 1) as f64;
        let z: Vec<f64> = z_worst
            .iter()
            .zip(&z_best)
            .map(|(a, b)| a + t * (b - a))
            .collect();
        let (lat_n, en_n) = model.predict(&Tensor::row_vector(&z), &layer_t);
        let lat = dataset.latency_norm.inverse_row(&[lat_n.get(0, 0)])[0];
        let en = dataset.energy_norm.inverse_row(&[en_n.get(0, 0)])[0];
        points.push(InterpolationPoint {
            t,
            z,
            predicted_edp: lat * en,
        });
    }

    Interpolation {
        z_worst,
        z_best,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_accel::{workloads, DesignSpace};
    use vaesa_cosa::CachedScheduler;

    fn fixture() -> (Dataset, VaesaModel) {
        let space = DesignSpace::coarse(4);
        let layers = vec![workloads::resnet50()[5].clone()];
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let ds = DatasetBuilder::new(&space, layers)
            .random_configs(60)
            .grid_per_axis(0)
            .build(&scheduler, &mut rng);
        let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
        Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 32,
            learning_rate: 3e-3,
        })
        .train_vae(&mut model, &ds, &mut rng);
        (ds, model)
    }

    #[test]
    fn interpolation_spans_worst_to_best() {
        let (ds, model) = fixture();
        let layer = ds.records[0].layer_raw;
        let interp = interpolate_worst_best(&model, &ds, &layer, 10, 3);
        assert_eq!(interp.points.len(), 13);
        assert_eq!(interp.points[0].t, 0.0);
        assert!((interp.points[9].t - 1.0).abs() < 1e-12);
        assert!(interp.points[12].t > 1.0);
        assert_eq!(interp.points[0].z, interp.z_worst);
        assert!(interp.worst_best_distance() > 0.0);
    }

    #[test]
    fn predicted_edp_is_positive_and_finite() {
        let (ds, model) = fixture();
        let layer = ds.records[0].layer_raw;
        let interp = interpolate_worst_best(&model, &ds, &layer, 8, 2);
        for p in &interp.points {
            assert!(p.predicted_edp.is_finite() && p.predicted_edp > 0.0);
        }
    }

    #[test]
    fn surface_trends_downward_toward_best() {
        let (ds, model) = fixture();
        let layer = ds.records[0].layer_raw;
        let interp = interpolate_worst_best(&model, &ds, &layer, 12, 0);
        // The paper's qualitative finding: the predicted surface tends to
        // decrease along the worst->best axis. Require that the endpoint is
        // better than the start and at least a weak majority of steps
        // decrease.
        let first = interp.points.first().unwrap().predicted_edp;
        let last = interp.points.last().unwrap().predicted_edp;
        assert!(
            last < first,
            "predicted EDP did not improve along the axis: {first:.3e} -> {last:.3e}"
        );
        assert!(
            interp.monotonicity() >= 0.5,
            "monotonicity {} too low",
            interp.monotonicity()
        );
    }

    #[test]
    fn monotonicity_of_trivial_interp_is_one() {
        let interp = Interpolation {
            z_worst: vec![0.0],
            z_best: vec![1.0],
            points: vec![InterpolationPoint {
                t: 0.0,
                z: vec![0.0],
                predicted_edp: 1.0,
            }],
        };
        assert_eq!(interp.monotonicity(), 1.0);
    }
}
