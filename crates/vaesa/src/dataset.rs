use crate::Normalizer;
use rand::Rng;
use serde::{Deserialize, Serialize};
use vaesa_accel::{ArchConfig, DesignSpace, LayerShape};
use vaesa_cosa::CachedScheduler;
use vaesa_nn::Tensor;

/// One labeled training sample: a hardware design, a DNN layer, and the
/// scheduler + cost model's latency and energy for that pair (raw units).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The design point.
    pub config: ArchConfig,
    /// Raw hardware feature values (Table II order).
    pub hw_raw: [f64; 6],
    /// Raw layer feature values (Table IV column order).
    pub layer_raw: [f64; 8],
    /// Latency in cycles.
    pub latency: f64,
    /// Energy in pJ.
    pub energy: f64,
}

impl Record {
    /// Energy-delay product of this sample.
    pub fn edp(&self) -> f64 {
        self.latency * self.energy
    }
}

/// A normalized training dataset for the VAE + predictor pipeline
/// (§III-B3): hardware features, layer features, and log-normalized
/// latency/energy labels, plus the fitted normalizers needed to map between
/// raw and model space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Raw per-sample records, aligned with the tensor rows.
    pub records: Vec<Record>,
    /// `N x 6` normalized hardware features.
    pub hw: Tensor,
    /// `N x 8` normalized layer features.
    pub layers: Tensor,
    /// `N x 1` normalized log-latency labels.
    pub latency: Tensor,
    /// `N x 1` normalized log-energy labels.
    pub energy: Tensor,
    /// Normalizer for hardware features.
    pub hw_norm: Normalizer,
    /// Normalizer for layer features.
    pub layer_norm: Normalizer,
    /// Normalizer for latency labels.
    pub latency_norm: Normalizer,
    /// Normalizer for energy labels.
    pub energy_norm: Normalizer,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Index of the sample with the lowest EDP.
    pub fn best_index(&self) -> usize {
        self.argmin_by_edp(false)
    }

    /// Index of the sample with the highest EDP.
    pub fn worst_index(&self) -> usize {
        self.argmin_by_edp(true)
    }

    fn argmin_by_edp(&self, invert: bool) -> usize {
        assert!(!self.is_empty(), "dataset is empty");
        let mut best = 0;
        for (i, r) in self.records.iter().enumerate() {
            let better = if invert {
                r.edp() > self.records[best].edp()
            } else {
                r.edp() < self.records[best].edp()
            };
            if better {
                best = i;
            }
        }
        best
    }

    /// Returns a new dataset with `new_records` appended, **keeping the
    /// existing normalizers** so a model trained on this dataset remains
    /// valid for fine-tuning (§III-B3: "as we explore more hardware designs
    /// during DSE, we can expand the dataset and retrain or fine tune").
    ///
    /// New values outside the original min/max extrapolate beyond `[0, 1]`,
    /// which the (linear-head) predictors handle gracefully. To instead
    /// refit normalizers, concatenate the records and call
    /// [`Dataset::from_records`] (a full retrain is then required).
    ///
    /// # Panics
    ///
    /// Panics if `new_records` is empty.
    pub fn extended(&self, new_records: Vec<Record>) -> Dataset {
        assert!(!new_records.is_empty(), "no records to extend with");
        let mut records = self.records.clone();
        let hw_rows: Vec<Vec<f64>> = new_records.iter().map(|r| r.hw_raw.to_vec()).collect();
        let layer_rows: Vec<Vec<f64>> = new_records.iter().map(|r| r.layer_raw.to_vec()).collect();
        let lat_rows: Vec<Vec<f64>> = new_records.iter().map(|r| vec![r.latency]).collect();
        let en_rows: Vec<Vec<f64>> = new_records.iter().map(|r| vec![r.energy]).collect();
        records.extend(new_records);
        use vaesa_nn::Tensor;
        Dataset {
            hw: Tensor::vstack(&[self.hw.clone(), self.hw_norm.transform_tensor(&hw_rows)]),
            layers: Tensor::vstack(&[
                self.layers.clone(),
                self.layer_norm.transform_tensor(&layer_rows),
            ]),
            latency: Tensor::vstack(&[
                self.latency.clone(),
                self.latency_norm.transform_tensor(&lat_rows),
            ]),
            energy: Tensor::vstack(&[
                self.energy.clone(),
                self.energy_norm.transform_tensor(&en_rows),
            ]),
            records,
            hw_norm: self.hw_norm.clone(),
            layer_norm: self.layer_norm.clone(),
            latency_norm: self.latency_norm.clone(),
            energy_norm: self.energy_norm.clone(),
        }
    }

    /// Builds a normalized dataset from raw records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn from_records(records: Vec<Record>) -> Self {
        assert!(
            !records.is_empty(),
            "cannot build a dataset from no records"
        );
        let hw_rows: Vec<Vec<f64>> = records.iter().map(|r| r.hw_raw.to_vec()).collect();
        let layer_rows: Vec<Vec<f64>> = records.iter().map(|r| r.layer_raw.to_vec()).collect();
        let lat_rows: Vec<Vec<f64>> = records.iter().map(|r| vec![r.latency]).collect();
        let en_rows: Vec<Vec<f64>> = records.iter().map(|r| vec![r.energy]).collect();

        let hw_norm = Normalizer::fit(&hw_rows);
        let layer_norm = Normalizer::fit(&layer_rows);
        let latency_norm = Normalizer::fit(&lat_rows);
        let energy_norm = Normalizer::fit(&en_rows);

        Dataset {
            hw: hw_norm.transform_tensor(&hw_rows),
            layers: layer_norm.transform_tensor(&layer_rows),
            latency: latency_norm.transform_tensor(&lat_rows),
            energy: energy_norm.transform_tensor(&en_rows),
            records,
            hw_norm,
            layer_norm,
            latency_norm,
            energy_norm,
        }
    }
}

/// Builds [`Dataset`]s by sampling the design space and labeling each
/// `(architecture, layer)` pair through the scheduler + cost model, exactly
/// as §III-B3 gathers its 500 K samples with grid and random search.
///
/// Only *valid* design points (those the scheduler can map) are added, so
/// the VAE learns the distribution of realistic designs.
#[derive(Debug)]
pub struct DatasetBuilder<'a> {
    space: &'a DesignSpace,
    layers: Vec<LayerShape>,
    random_configs: usize,
    grid_per_axis: usize,
}

impl<'a> DatasetBuilder<'a> {
    /// Creates a builder over a design space and a layer pool.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(space: &'a DesignSpace, layers: Vec<LayerShape>) -> Self {
        assert!(!layers.is_empty(), "dataset needs at least one layer");
        DatasetBuilder {
            space,
            layers,
            random_configs: 256,
            grid_per_axis: 2,
        }
    }

    /// Sets the number of random design points (default 256).
    pub fn random_configs(mut self, n: usize) -> Self {
        self.random_configs = n;
        self
    }

    /// Sets the grid density per parameter for the grid-seeded portion
    /// (default 2; 0 disables the grid).
    pub fn grid_per_axis(mut self, n: usize) -> Self {
        self.grid_per_axis = n;
        self
    }

    /// Samples, schedules, and labels; returns the normalized dataset.
    ///
    /// Design points that fail to schedule on *any* layer contribute only
    /// their valid `(arch, layer)` pairs, matching the paper's
    /// "only add valid design points" rule.
    ///
    /// # Panics
    ///
    /// Panics if no valid sample at all could be generated (e.g. an empty
    /// budget).
    pub fn build(&self, scheduler: &CachedScheduler, rng: &mut impl Rng) -> Dataset {
        self.build_parallel(scheduler, rng, vaesa_par::num_threads())
    }

    /// Like [`DatasetBuilder::build`], labeling design points on `threads`
    /// worker threads. The result is byte-identical to the sequential build
    /// (same RNG stream for sampling, records concatenated in config
    /// order); only wall-clock time changes. Useful for `--full`-scale
    /// datasets with hundreds of thousands of schedules.
    ///
    /// RNG sampling happens *before* the fan-out, and the index-preserving
    /// [`vaesa_par::par_map_threads`] keeps per-config record groups in
    /// config order, so the concatenation is independent of thread count.
    /// Per-config work claiming balances the uneven scheduler cost (cache
    /// hits vs. full mapspace searches) across workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn build_parallel(
        &self,
        scheduler: &CachedScheduler,
        rng: &mut impl Rng,
        threads: usize,
    ) -> Dataset {
        assert!(threads >= 1, "need at least one thread");
        let configs = self.sample_configs(rng);
        let per_config: Vec<Vec<Record>> =
            vaesa_par::par_map_threads(&configs, threads, |config| {
                let mut out = Vec::new();
                self.label_config(config, scheduler, &mut out);
                out
            });
        Dataset::from_records(per_config.into_iter().flatten().collect())
    }

    fn sample_configs(&self, rng: &mut impl Rng) -> Vec<ArchConfig> {
        let mut configs: Vec<ArchConfig> = Vec::new();
        if self.grid_per_axis >= 1 {
            configs.extend(self.space.grid(self.grid_per_axis));
        }
        for _ in 0..self.random_configs {
            configs.push(self.space.random(rng));
        }
        configs
    }

    fn label_config(
        &self,
        config: &ArchConfig,
        scheduler: &CachedScheduler,
        records: &mut Vec<Record>,
    ) {
        let arch = self.space.describe(config);
        for layer in &self.layers {
            if let Ok(s) = scheduler.schedule(&arch, layer) {
                records.push(Record {
                    config: *config,
                    hw_raw: self.space.raw_features(config),
                    layer_raw: layer.features(),
                    latency: s.evaluation.latency_cycles,
                    energy: s.evaluation.energy_pj,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_accel::workloads;

    fn tiny_dataset() -> Dataset {
        let space = DesignSpace::coarse(4);
        let layers = vec![
            workloads::alexnet()[2].clone(),
            workloads::resnet50()[1].clone(),
        ];
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        DatasetBuilder::new(&space, layers)
            .random_configs(30)
            .grid_per_axis(0)
            .build(&scheduler, &mut rng)
    }

    #[test]
    fn builder_produces_normalized_tensors() {
        let ds = tiny_dataset();
        assert!(ds.len() >= 30, "only {} samples", ds.len());
        assert_eq!(ds.hw.shape(), (ds.len(), 6));
        assert_eq!(ds.layers.shape(), (ds.len(), 8));
        assert_eq!(ds.latency.shape(), (ds.len(), 1));
        assert_eq!(ds.energy.shape(), (ds.len(), 1));
        // Everything normalized into [0, 1].
        for t in [&ds.hw, &ds.layers, &ds.latency, &ds.energy] {
            assert!(t
                .as_slice()
                .iter()
                .all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn records_align_with_tensors() {
        let ds = tiny_dataset();
        let row0 = ds.hw_norm.transform_row(&ds.records[0].hw_raw);
        for (c, &v) in row0.iter().enumerate() {
            assert!((ds.hw.get(0, c) - v).abs() < 1e-12);
        }
        let lat0 = ds.latency_norm.transform_row(&[ds.records[0].latency]);
        assert!((ds.latency.get(0, 0) - lat0[0]).abs() < 1e-12);
    }

    #[test]
    fn best_and_worst_indices_bracket_edp() {
        let ds = tiny_dataset();
        let best = ds.best_index();
        let worst = ds.worst_index();
        let best_edp = ds.records[best].edp();
        let worst_edp = ds.records[worst].edp();
        assert!(best_edp <= worst_edp);
        for r in &ds.records {
            assert!(r.edp() >= best_edp);
            assert!(r.edp() <= worst_edp);
        }
    }

    #[test]
    fn grid_seeding_adds_points() {
        let space = DesignSpace::coarse(4);
        let layers = vec![workloads::alexnet()[2].clone()];
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = DatasetBuilder::new(&space, layers)
            .random_configs(0)
            .grid_per_axis(2)
            .build(&scheduler, &mut rng);
        // 2^6 grid points, most schedulable on a midsize conv layer.
        assert!(ds.len() >= 32, "only {}", ds.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let space = DesignSpace::coarse(4);
        let layers = vec![
            workloads::alexnet()[2].clone(),
            workloads::resnet50()[1].clone(),
        ];
        let builder = DatasetBuilder::new(&space, layers)
            .random_configs(24)
            .grid_per_axis(0);
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let seq = builder.build(&scheduler, &mut rng);
        for threads in [1usize, 3, 8] {
            let scheduler = CachedScheduler::default();
            let mut rng = ChaCha8Rng::seed_from_u64(55);
            let par = builder.build_parallel(&scheduler, &mut rng, threads);
            assert_eq!(seq.records, par.records, "threads = {threads}");
            assert!(par.hw.approx_eq(&seq.hw, 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let space = DesignSpace::coarse(4);
        let layers = vec![workloads::alexnet()[2].clone()];
        let builder = DatasetBuilder::new(&space, layers);
        let scheduler = CachedScheduler::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = builder.build_parallel(&scheduler, &mut rng, 0);
    }

    #[test]
    #[should_panic(expected = "no records")]
    fn empty_records_panics() {
        let _ = Dataset::from_records(Vec::new());
    }

    #[test]
    fn extended_keeps_normalizers_and_appends() {
        let ds = tiny_dataset();
        let n0 = ds.len();
        let extra: Vec<Record> = ds.records[..5].to_vec();
        let bigger = ds.extended(extra);
        assert_eq!(bigger.len(), n0 + 5);
        assert_eq!(bigger.hw.rows(), n0 + 5);
        // Normalizers unchanged.
        assert_eq!(bigger.hw_norm, ds.hw_norm);
        assert_eq!(bigger.latency_norm, ds.latency_norm);
        // The appended rows normalize identically to their originals.
        for i in 0..5 {
            for c in 0..6 {
                assert_eq!(bigger.hw.get(n0 + i, c), ds.hw.get(i, c));
            }
            assert_eq!(bigger.latency.get(n0 + i, 0), ds.latency.get(i, 0));
        }
    }

    #[test]
    #[should_panic(expected = "no records to extend")]
    fn extended_rejects_empty() {
        let ds = tiny_dataset();
        let _ = ds.extended(Vec::new());
    }
}
