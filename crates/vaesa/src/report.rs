//! Search-comparison reporting: the paper's Table V metrics (search
//! performance and sample efficiency) computed from raw [`Trace`]s.
//!
//! §IV-A2 defines the two metrics this module implements:
//!
//! - **Search performance (SP)**: the best EDP achieved within the budget,
//!   relative to the *average random-search* result (higher is better;
//!   random ≡ 1.00).
//! - **Sample efficiency (SE)**: the rate at which a method reaches within
//!   3% of the best-known EDP, relative to random (higher is better;
//!   methods that never arrive are charged `budget + 1` samples).

use serde::{Deserialize, Serialize};
use vaesa_dse::Trace;
use vaesa_linalg::stats;

/// The tolerance band of the paper's sample-efficiency metric: within 3%
/// of the best-known value.
pub const SE_TOLERANCE: f64 = 0.03;

/// Multi-seed traces of one search method on one workload.
#[derive(Debug, Clone)]
pub struct MethodRuns {
    /// Method label (e.g. `"vae_bo"`).
    pub label: String,
    /// One trace per seed, all with the same budget.
    pub traces: Vec<Trace>,
}

impl MethodRuns {
    /// Bundles traces under a label.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn new(label: impl Into<String>, traces: Vec<Trace>) -> Self {
        assert!(!traces.is_empty(), "method needs at least one trace");
        MethodRuns {
            label: label.into(),
            traces,
        }
    }

    /// Mean best value across seeds (`None` if no seed found a valid point).
    pub fn mean_best(&self) -> Option<f64> {
        let bests: Vec<f64> = self.traces.iter().filter_map(Trace::best_value).collect();
        stats::mean(&bests)
    }

    /// Mean samples-to-within-[`SE_TOLERANCE`] of `reference`, charging
    /// `budget + 1` when never reached.
    pub fn mean_samples_to(&self, reference: f64, budget: usize) -> f64 {
        let needed: Vec<f64> = self
            .traces
            .iter()
            .map(|t| {
                t.samples_to_within(SE_TOLERANCE, reference)
                    .unwrap_or(budget + 1) as f64
            })
            .collect();
        stats::mean(&needed).unwrap_or(f64::NAN)
    }
}

/// One row of a [`Comparison`]: the paper's per-method Table V entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Method label.
    pub label: String,
    /// Mean best value across seeds.
    pub mean_best: f64,
    /// Search performance relative to random (higher is better).
    pub search_performance: f64,
    /// Sample efficiency relative to random (higher is better).
    pub sample_efficiency: f64,
    /// Mean samples to reach within 3% of the best-known value.
    pub mean_samples_to_3pct: f64,
}

/// A Table V-style comparison of several methods against a random baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Best value observed by any method/seed (the "best known" reference).
    pub best_known: f64,
    /// Per-method summaries, in input order (random first).
    pub methods: Vec<MethodSummary>,
}

impl Comparison {
    /// Computes the comparison. `random` must be the random-search baseline
    /// (its SP and SE define 1.00); `others` are the competing methods. All
    /// traces must share `budget`.
    ///
    /// # Panics
    ///
    /// Panics if the random baseline found no valid design.
    pub fn against_random(random: &MethodRuns, others: &[MethodRuns], budget: usize) -> Self {
        let best_known = std::iter::once(random)
            .chain(others)
            .flat_map(|m| m.traces.iter())
            .filter_map(Trace::best_value)
            .fold(f64::INFINITY, f64::min);
        let random_best = random
            .mean_best()
            .expect("random baseline found no valid design");
        let random_samples = random.mean_samples_to(best_known, budget);

        let summarize = |m: &MethodRuns| {
            let mean_best = m.mean_best().unwrap_or(f64::NAN);
            let samples = m.mean_samples_to(best_known, budget);
            MethodSummary {
                label: m.label.clone(),
                mean_best,
                search_performance: random_best / mean_best,
                sample_efficiency: random_samples / samples,
                mean_samples_to_3pct: samples,
            }
        };
        let mut methods = vec![summarize(random)];
        methods.extend(others.iter().map(summarize));
        Comparison {
            best_known,
            methods,
        }
    }

    /// Formats the comparison as a fixed-width text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<12} {:>12} {:>8} {:>8} {:>12}\n",
            "method", "mean best", "SP", "SE", "samples-to-3%"
        );
        for m in &self.methods {
            out.push_str(&format!(
                "{:<12} {:>12.4e} {:>8.2} {:>8.2} {:>12.0}\n",
                m.label,
                m.mean_best,
                m.search_performance,
                m.sample_efficiency,
                m.mean_samples_to_3pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(values: &[f64]) -> Trace {
        let mut t = Trace::new("t");
        for (i, &v) in values.iter().enumerate() {
            t.record(vec![i as f64], Some(v));
        }
        t
    }

    #[test]
    fn random_baseline_is_identity() {
        let random = MethodRuns::new("random", vec![trace_with(&[10.0, 8.0, 6.0])]);
        let cmp = Comparison::against_random(&random, &[], 3);
        assert_eq!(cmp.methods.len(), 1);
        let r = &cmp.methods[0];
        assert!((r.search_performance - 1.0).abs() < 1e-12);
        assert!((r.sample_efficiency - 1.0).abs() < 1e-12);
        assert_eq!(cmp.best_known, 6.0);
    }

    #[test]
    fn better_method_gets_sp_and_se_above_one() {
        // Random reaches 6 at sample 3; the method reaches 6 at sample 1 and
        // finishes at 5.
        let random = MethodRuns::new("random", vec![trace_with(&[10.0, 8.0, 6.0])]);
        let fast = MethodRuns::new("vae_bo", vec![trace_with(&[6.0, 5.5, 5.0])]);
        let cmp = Comparison::against_random(&random, &[fast], 3);
        let m = &cmp.methods[1];
        assert_eq!(cmp.best_known, 5.0);
        assert!(m.search_performance > 1.0, "SP = {}", m.search_performance);
        assert!(m.sample_efficiency > 1.0, "SE = {}", m.sample_efficiency);
    }

    #[test]
    fn never_reaching_method_is_charged_budget_plus_one() {
        let random = MethodRuns::new("random", vec![trace_with(&[10.0, 1.0])]);
        let bad = MethodRuns::new("bad", vec![trace_with(&[10.0, 9.0])]);
        let cmp = Comparison::against_random(&random, &[bad], 2);
        let m = &cmp.methods[1];
        assert_eq!(m.mean_samples_to_3pct, 3.0); // budget + 1
        assert!(m.sample_efficiency < 1.0);
        assert!(m.search_performance < 1.0);
    }

    #[test]
    fn multi_seed_means_are_used() {
        let random = MethodRuns::new(
            "random",
            vec![trace_with(&[4.0, 4.0]), trace_with(&[8.0, 6.0])],
        );
        let cmp = Comparison::against_random(&random, &[], 2);
        // mean best = (4 + 6) / 2 = 5
        assert!((cmp.methods[0].mean_best - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_methods() {
        let random = MethodRuns::new("random", vec![trace_with(&[2.0])]);
        let other = MethodRuns::new("bo", vec![trace_with(&[1.9])]);
        let cmp = Comparison::against_random(&random, &[other], 1);
        let table = cmp.to_table();
        assert!(table.contains("random"));
        assert!(table.contains("bo"));
        assert!(table.contains("SP"));
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_runs_rejected() {
        let _ = MethodRuns::new("x", vec![]);
    }
}
