//! The design-space-exploration flows of §III-C and §IV: `random`, `bo`,
//! `vae_bo`, `gd`, and `vae_gd`.
//!
//! All flows minimize workload EDP. The input-space flows search the
//! normalized 6-feature box `[0, 1]^6`; the latent flows search the VAE
//! latent box and decode candidates back through the decoder. Every decoded
//! or denormalized point is snapped to the nearest legal design (the
//! "reconstructible" property) before it is scheduled and scored.
//!
//! Each `run_*` entry point is a thin shim over
//! [`DseDriver`](crate::driver::DseDriver): one
//! [`SearchEngine`](vaesa_dse::SearchEngine) in one
//! [`SpaceMode`](crate::driver::SpaceMode). The driver owns candidate
//! evaluation (snap / decode / schedule, batched across the thread pool)
//! and the `vae_` label prefixing; the shims only pick the engine and wire
//! the trained artifacts in.

use crate::driver::{DseDriver, SpaceMode};
use crate::{Dataset, InputPredictors, Normalizer, VaesaModel};
use rand::RngCore;
use vaesa_accel::{ArchConfig, DesignSpace, LayerShape};
use vaesa_cosa::CachedScheduler;
use vaesa_dse::{
    BoEngine, BoxSpace, CdEngine, EvoEngine, FnDifferentiable, GdConfig, GdEngine, GradientDescent,
    RandomEngine, SaEngine, Trace,
};
use vaesa_nn::Tensor;

/// Which scalar the search minimizes (§IV-A2: the flow can optimize the
/// energy-delay product, or latency and energy separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Energy-delay product, the paper's featured objective.
    #[default]
    Edp,
    /// Total workload latency in cycles.
    Latency,
    /// Total workload energy in pJ.
    Energy,
}

impl Metric {
    /// Extracts the metric from a workload evaluation.
    pub fn of(self, eval: &vaesa_cosa::WorkloadEval) -> f64 {
        match self {
            Metric::Edp => eval.edp(),
            Metric::Latency => eval.total_latency_cycles,
            Metric::Energy => eval.total_energy_pj,
        }
    }
}

/// Shared scoring backend: snaps candidate designs to the discrete space,
/// schedules the workload, and returns the chosen [`Metric`].
#[derive(Debug)]
pub struct HardwareEvaluator<'a> {
    space: &'a DesignSpace,
    scheduler: &'a CachedScheduler,
    layers: &'a [LayerShape],
    metric: Metric,
}

impl<'a> HardwareEvaluator<'a> {
    /// Creates an EDP-minimizing evaluator for a workload (a set of layers
    /// whose latency and energy are summed before forming EDP).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(
        space: &'a DesignSpace,
        scheduler: &'a CachedScheduler,
        layers: &'a [LayerShape],
    ) -> Self {
        Self::with_metric(space, scheduler, layers, Metric::Edp)
    }

    /// Creates an evaluator minimizing an explicit [`Metric`].
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn with_metric(
        space: &'a DesignSpace,
        scheduler: &'a CachedScheduler,
        layers: &'a [LayerShape],
        metric: Metric,
    ) -> Self {
        assert!(!layers.is_empty(), "workload needs at least one layer");
        HardwareEvaluator {
            space,
            scheduler,
            layers,
            metric,
        }
    }

    /// The design space being searched.
    pub fn space(&self) -> &DesignSpace {
        self.space
    }

    /// The metric being minimized.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The workload's layers.
    pub fn layers(&self) -> &[LayerShape] {
        self.layers
    }

    /// Full workload evaluation of a design point, or `None` if any layer
    /// has no valid mapping.
    pub fn workload_eval(&self, config: &ArchConfig) -> Option<vaesa_cosa::WorkloadEval> {
        let arch = self.space.describe(config);
        self.scheduler.schedule_workload(&arch, self.layers).ok()
    }

    /// The selected metric of a concrete design point, or `None` if any
    /// layer has no valid mapping. Named `edp_of_config` because EDP is the
    /// default metric; with [`Metric::Latency`]/[`Metric::Energy`] it
    /// returns that quantity instead.
    pub fn edp_of_config(&self, config: &ArchConfig) -> Option<f64> {
        self.workload_eval(config).map(|w| self.metric.of(&w))
    }

    /// Snaps a normalized feature row to the nearest legal design point
    /// (in log space, matching the feature normalization).
    pub fn snap(&self, normalized_hw: &[f64], hw_norm: &Normalizer) -> ArchConfig {
        let logs = hw_norm.inverse_row_log(normalized_hw);
        let arr: [f64; 6] = logs.try_into().expect("6 hardware features");
        self.space.config_from_log_nearest(&arr)
    }

    /// Workload EDP of a normalized feature row (snap + schedule).
    pub fn edp_of_normalized(&self, normalized_hw: &[f64], hw_norm: &Normalizer) -> Option<f64> {
        self.edp_of_config(&self.snap(normalized_hw, hw_norm))
    }
}

/// Decodes a latent point to a legal design point through the decoder and
/// nearest-value snapping.
pub fn decode_to_config(
    model: &VaesaModel,
    z: &[f64],
    hw_norm: &Normalizer,
    evaluator: &HardwareEvaluator<'_>,
) -> ArchConfig {
    vaesa_obs::counter("dse.decodes").incr();
    let decoded = model.decode(&Tensor::row_vector(z));
    evaluator.snap(decoded.row(0), hw_norm)
}

/// Decodes a batch of latent points to legal design points through one
/// decoder forward pass.
///
/// The decoder graph is row-independent, so entry `r` is identical to
/// [`decode_to_config`] on `zs[r]` alone.
pub fn decode_to_configs(
    model: &VaesaModel,
    zs: &[Vec<f64>],
    hw_norm: &Normalizer,
    evaluator: &HardwareEvaluator<'_>,
) -> Vec<ArchConfig> {
    if zs.is_empty() {
        return Vec::new();
    }
    vaesa_obs::counter("dse.decodes").add(zs.len() as u64);
    let refs: Vec<&[f64]> = zs.iter().map(Vec::as_slice).collect();
    let decoded = model.decode(&Tensor::from_rows(&refs));
    (0..zs.len())
        .map(|r| evaluator.snap(decoded.row(r), hw_norm))
        .collect()
}

/// Fallback half-width of the latent search box when no dataset is
/// available. The KL-regularized latent space concentrates near the origin;
/// ±3 standard deviations of the prior covers effectively all of it.
pub const LATENT_HALF_WIDTH: f64 = 3.0;

/// The latent search box: the axis-aligned bounding box of the encoded
/// training data, widened by 25% per side (at least ±0.5).
///
/// Searching where the training data actually landed matters because the
/// decoder is only trained (and therefore only reconstructible) on that
/// region; a fixed prior-based box can clip it or waste budget outside it.
pub fn latent_box(model: &VaesaModel, dataset: &Dataset) -> BoxSpace {
    let z = model.encode_mean(&dataset.hw);
    let dz = model.latent_dim();
    let mut lo = vec![f64::INFINITY; dz];
    let mut hi = vec![f64::NEG_INFINITY; dz];
    for r in 0..z.rows() {
        for d in 0..dz {
            lo[d] = lo[d].min(z.get(r, d));
            hi[d] = hi[d].max(z.get(r, d));
        }
    }
    for d in 0..dz {
        if !lo[d].is_finite() || !hi[d].is_finite() {
            lo[d] = -LATENT_HALF_WIDTH;
            hi[d] = LATENT_HALF_WIDTH;
        }
        let margin = (0.25 * (hi[d] - lo[d])).max(0.5);
        lo[d] -= margin;
        hi[d] += margin;
    }
    BoxSpace::new(lo, hi)
}

/// Scores a batch of normalized candidate rows through the evaluator in
/// parallel (snap + schedule per candidate), preserving input order.
///
/// The scheduler queries dominate DSE wall-clock; batch flows hand their
/// candidate sets here so the snap/schedule/score pipeline fans out across
/// the [`vaesa_par`] pool. Output slot `i` always belongs to candidate `i`,
/// so callers can zip scores back onto candidates for any thread count.
pub fn score_batch(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    candidates: &[Vec<f64>],
) -> Vec<Option<f64>> {
    vaesa_par::par_map(candidates, |x| evaluator.edp_of_normalized(x, hw_norm))
}

/// `random` baseline: uniform random search over the normalized input box.
/// Candidates are scored through the parallel pool; the trace is identical
/// to a serial draw-score loop at any thread count.
pub fn run_random(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::direct(evaluator, hw_norm).run(&RandomEngine, SpaceMode::Direct, budget, rng)
}

/// `bo` baseline: Bayesian optimization directly on the normalized input
/// box (the high-dimensional, effectively discrete space — BO must model a
/// stepwise-constant objective here, which is the weakness VAESA addresses).
pub fn run_bo(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::direct(evaluator, hw_norm).run(&BoEngine::default(), SpaceMode::Direct, budget, rng)
}

/// `vae_bo`: Bayesian optimization over the VAE latent space (Figure 6a).
/// Each BO sample is decoded to a legal design, scheduled, and scored; the
/// GP models the latent-space EDP surface.
pub fn run_vae_bo(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::new(evaluator, dataset).with_model(model).run(
        &BoEngine::default(),
        SpaceMode::Latent,
        budget,
        rng,
    )
}

/// `evo` baseline: evolutionary (genetic) search on the normalized input
/// box — the Table I "NAAS: Evolutionary" class of optimizer, provided as
/// an extension beyond the paper's featured strategies.
pub fn run_evo(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::direct(evaluator, hw_norm).run(&EvoEngine::default(), SpaceMode::Direct, budget, rng)
}

/// `vae_evo`: evolutionary search over the VAE latent space; like
/// [`run_vae_bo`] but with a genetic optimizer driving the sampling.
pub fn run_vae_evo(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::new(evaluator, dataset).with_model(model).run(
        &EvoEngine::default(),
        SpaceMode::Latent,
        budget,
        rng,
    )
}

/// `cd` baseline: greedy coordinate descent (compass search) on the
/// normalized input box — the Table I "heuristics-driven" class. From a
/// random point, probe each feature up and down, take the best improving
/// move, shrink the step when stuck, and restart from a fresh random point
/// when the step bottoms out. Every probe costs one scheduler query; the
/// snap to the discrete design space makes the probes move between legal
/// neighbouring designs.
pub fn run_coordinate_descent(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::direct(evaluator, hw_norm).run(&CdEngine::default(), SpaceMode::Direct, budget, rng)
}

/// `sa` baseline: simulated annealing on the normalized input box.
pub fn run_annealing(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::direct(evaluator, hw_norm).run(&SaEngine::default(), SpaceMode::Direct, budget, rng)
}

/// `vae_sa`: simulated annealing over the VAE latent space.
pub fn run_vae_annealing(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    budget: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::new(evaluator, dataset).with_model(model).run(
        &SaEngine::default(),
        SpaceMode::Latent,
        budget,
        rng,
    )
}

/// `vae_gd`: gradient descent on the predictor surface in latent space
/// (Figure 6b). Each *sample* is one full descent from a random latent
/// start; only the final decoded design is scheduled, so a sample costs one
/// simulator query exactly as in the paper. All starts descend in lockstep
/// (one batched predictor pass per step) and the finals are scored through
/// the parallel pool — bit-identical to a serial per-start loop at any
/// thread count.
pub fn run_vae_gd(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    layer: &LayerShape,
    samples: usize,
    gd: GdConfig,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::new(evaluator, dataset)
        .with_model(model)
        .with_gd_layer(layer)
        .run(&GdEngine { config: gd }, SpaceMode::Latent, samples, rng)
}

/// `vae_gd` for a whole network (the paper's §IV-D outlook): descends the
/// differentiable *sum-over-layers* EDP proxy of
/// [`VaesaModel::predicted_network_edp_grad`] and scores the decoded design
/// on the evaluator's full workload. One simulator query per sample, like
/// [`run_vae_gd`].
pub fn run_vae_gd_network(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    samples: usize,
    gd: GdConfig,
    rng: &mut dyn RngCore,
) -> Trace {
    let layer_rows: Vec<Vec<f64>> = evaluator
        .layers()
        .iter()
        .map(|l| dataset.layer_norm.transform_row(&l.features()))
        .collect();
    let layer_refs: Vec<&[f64]> = layer_rows.iter().map(Vec::as_slice).collect();
    let layers_n = Tensor::from_rows(&layer_refs);
    let lat_affine = (
        dataset.latency_norm.log_range()[0],
        dataset.latency_norm.log_min()[0],
    );
    let en_affine = (
        dataset.energy_norm.log_range()[0],
        dataset.energy_norm.log_min()[0],
    );
    let space = latent_box(model, dataset);
    let driver = GradientDescent::new(space.clone(), gd);
    let mut trace = Trace::new("vae_gd_network");
    let mut rng = rng;
    for _ in 0..samples {
        let start = space.sample(&mut rng);
        let mut objective = FnDifferentiable::new(model.latent_dim(), |z: &[f64]| {
            model.predicted_network_edp_grad(z, &layers_n, lat_affine, en_affine)
        });
        let path = driver.run(&mut objective, &start);
        let z = path.final_point();
        let config = decode_to_config(model, z, &dataset.hw_norm, evaluator);
        let score = evaluator.edp_of_config(&config);
        trace.record(z.to_vec(), score);
    }
    trace
}

/// `gd` baseline: gradient descent on input-space predictors, rounding the
/// optimized continuous features to the nearest legal design (§IV-D).
pub fn run_gd(
    evaluator: &HardwareEvaluator<'_>,
    predictors: &InputPredictors,
    dataset: &Dataset,
    layer: &LayerShape,
    samples: usize,
    gd: GdConfig,
    rng: &mut dyn RngCore,
) -> Trace {
    DseDriver::new(evaluator, dataset)
        .with_input_predictors(predictors)
        .with_gd_layer(layer)
        .run(&GdEngine { config: gd }, SpaceMode::Direct, samples, rng)
}

/// `random` for the GD study: uniform samples over the input box, scored on
/// a single layer — the third curve of Figure 12.
pub fn run_random_layer(
    evaluator: &HardwareEvaluator<'_>,
    hw_norm: &Normalizer,
    samples: usize,
    rng: &mut dyn RngCore,
) -> Trace {
    run_random(evaluator, hw_norm, samples, rng)
}

/// Decoded-design EDP after a fixed number of GD steps from a given start
/// (the Figure 13 measurement): returns `(edp_at_each_requested_step)`.
pub fn vae_gd_edp_at_steps(
    evaluator: &HardwareEvaluator<'_>,
    model: &VaesaModel,
    dataset: &Dataset,
    layer: &LayerShape,
    start: &[f64],
    step_counts: &[usize],
    gd: GdConfig,
) -> Vec<Option<f64>> {
    let layer_n = dataset.layer_norm.transform_row(&layer.features());
    let (w_lat, w_en) = proxy_weights(evaluator.metric(), dataset);
    let max_steps = step_counts.iter().copied().max().unwrap_or(0);
    let config = GdConfig {
        steps: max_steps,
        ..gd
    };
    let space = latent_box(model, dataset);
    let driver = GradientDescent::new(space, config);
    let mut objective = FnDifferentiable::new(model.latent_dim(), |z: &[f64]| {
        model.predicted_edp_grad(z, &layer_n, w_lat, w_en)
    });
    let path = driver.run(&mut objective, start);
    step_counts
        .iter()
        .map(|&s| {
            let z = &path.at_step(s).expect("step recorded").x;
            let config = decode_to_config(model, z, &dataset.hw_norm, evaluator);
            evaluator.edp_of_config(&config)
        })
        .collect()
}

/// Log-range weights turning normalized predictor outputs into a quantity
/// monotone in the chosen metric: ln EDP = ln latency + ln energy, so EDP
/// weights both heads by their log ranges; latency/energy-only metrics zero
/// out the other head.
pub(crate) fn proxy_weights(metric: Metric, dataset: &Dataset) -> (f64, f64) {
    let w_lat = dataset.latency_norm.log_range()[0];
    let w_en = dataset.energy_norm.log_range()[0];
    match metric {
        Metric::Edp => (w_lat, w_en),
        Metric::Latency => (w_lat, 0.0),
        Metric::Energy => (0.0, w_en),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Fixture;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vaesa_accel::ArchParam;

    #[test]
    fn evaluator_scores_configs_and_normalized_rows() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let config = ds.records[0].config;
        let direct = ev.edp_of_config(&config).unwrap();
        assert!(direct > 0.0);
        // Round-tripping the exact normalized features recovers the config.
        let normalized = ds.hw_norm.transform_row(&ds.records[0].hw_raw);
        let snapped = ev.snap(&normalized, &ds.hw_norm);
        assert_eq!(snapped, config);
        assert_eq!(ev.edp_of_normalized(&normalized, &ds.hw_norm), Some(direct));
    }

    #[test]
    fn random_and_bo_flows_produce_full_traces() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let tr = run_random(&ev, &ds.hw_norm, 20, &mut rng);
        assert_eq!(tr.len(), 20);
        assert!(tr.best_value().is_some());
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let tb = run_bo(&ev, &ds.hw_norm, 20, &mut rng);
        assert_eq!(tb.len(), 20);
        assert!(tb.best_value().is_some());
    }

    #[test]
    fn batched_decode_matches_single_decode() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let ev = f.evaluator();
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let space = latent_box(&model, &ds);
        let zs: Vec<Vec<f64>> = (0..9).map(|_| space.sample(&mut rng)).collect();
        let batched = decode_to_configs(&model, &zs, &ds.hw_norm, &ev);
        for (z, b) in zs.iter().zip(&batched) {
            assert_eq!(*b, decode_to_config(&model, z, &ds.hw_norm, &ev));
        }
        assert!(decode_to_configs(&model, &[], &ds.hw_norm, &ev).is_empty());
    }

    #[test]
    fn score_batch_preserves_candidate_order() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let space = BoxSpace::unit(crate::HW_FEATURES);
        let candidates: Vec<Vec<f64>> = (0..12).map(|_| space.sample(&mut rng)).collect();
        let batch = score_batch(&ev, &ds.hw_norm, &candidates);
        for (x, v) in candidates.iter().zip(&batch) {
            assert_eq!(*v, ev.edp_of_normalized(x, &ds.hw_norm));
        }
    }

    #[test]
    fn vae_bo_finds_competitive_designs() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let trace = run_vae_bo(&ev, &model, &ds, 30, &mut rng);
        assert_eq!(trace.label(), "vae_bo");
        assert_eq!(trace.len(), 30);
        let best = trace.best_value().expect("found valid designs");
        // The latent search should land within 100x of the best training
        // EDP (a loose sanity bound; the experiment binaries measure the
        // real comparison).
        let train_best = ds.records[ds.best_index()].edp();
        assert!(
            best < train_best * 100.0,
            "best {best:.3e} vs {train_best:.3e}"
        );
    }

    #[test]
    fn vae_gd_improves_over_its_own_starts() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let layer = f.layers[0].clone();
        let single = vec![layer.clone()];
        let ev_single = HardwareEvaluator::new(&f.space, &f.scheduler, &single);

        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let gd_cfg = GdConfig {
            steps: 50,
            ..GdConfig::default()
        };
        let trace = run_vae_gd(&ev_single, &model, &ds, &layer, 5, gd_cfg, &mut rng);
        assert_eq!(trace.label(), "vae_gd");
        assert_eq!(trace.len(), 5);
        assert!(trace.best_value().is_some());

        // Figure 13 protocol: EDP after steps 0 and 50 from the same start.
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let space = latent_box(&model, &ds);
        let mut improved = 0;
        let mut comparisons = 0;
        for _ in 0..5 {
            let start = space.sample(&mut rng);
            let edps =
                vae_gd_edp_at_steps(&ev_single, &model, &ds, &layer, &start, &[0, 50], gd_cfg);
            if let (Some(e0), Some(e1)) = (edps[0], edps[1]) {
                comparisons += 1;
                if e1 <= e0 {
                    improved += 1;
                }
            }
        }
        assert!(comparisons >= 3, "too few valid start/end pairs");
        assert!(
            improved * 2 >= comparisons,
            "GD improved only {improved}/{comparisons} starts"
        );
    }

    #[test]
    fn gd_baseline_runs() {
        let f = Fixture::new();
        let ds = f.dataset();
        let layer = f.layers[0].clone();
        let single = vec![layer.clone()];
        let ev = HardwareEvaluator::new(&f.space, &f.scheduler, &single);
        let preds = f.trained_input_predictors(&ds);
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let trace = run_gd(&ev, &preds, &ds, &layer, 4, GdConfig::default(), &mut rng);
        assert_eq!(trace.label(), "gd");
        assert_eq!(trace.len(), 4);
        assert!(trace.best_value().is_some());
    }

    #[test]
    fn metric_selects_the_optimized_quantity() {
        let f = Fixture::new();
        let ds = f.dataset();
        let config = ds.records[0].config;
        let edp_ev = HardwareEvaluator::with_metric(&f.space, &f.scheduler, &f.layers, Metric::Edp);
        let lat_ev =
            HardwareEvaluator::with_metric(&f.space, &f.scheduler, &f.layers, Metric::Latency);
        let en_ev =
            HardwareEvaluator::with_metric(&f.space, &f.scheduler, &f.layers, Metric::Energy);
        let w = edp_ev.workload_eval(&config).expect("valid");
        assert_eq!(edp_ev.edp_of_config(&config), Some(w.edp()));
        assert_eq!(lat_ev.edp_of_config(&config), Some(w.total_latency_cycles));
        assert_eq!(en_ev.edp_of_config(&config), Some(w.total_energy_pj));
        // EDP = latency * energy, and the parts are smaller than the product
        // for any realistically sized workload.
        assert!(w.edp() > w.total_latency_cycles);
        assert!(w.edp() > w.total_energy_pj);
    }

    #[test]
    fn latency_metric_changes_the_search_target() {
        // Optimizing latency alone must never find a *lower-latency* design
        // than optimizing it directly... i.e. the latency-metric search's
        // best latency <= the EDP-metric search's best latency (same seed).
        let f = Fixture::new();
        let ds = f.dataset();
        let lat_ev =
            HardwareEvaluator::with_metric(&f.space, &f.scheduler, &f.layers, Metric::Latency);
        let edp_ev = HardwareEvaluator::new(&f.space, &f.scheduler, &f.layers);
        let mut r1 = ChaCha8Rng::seed_from_u64(33);
        let lat_trace = run_random(&lat_ev, &ds.hw_norm, 30, &mut r1);
        let mut r2 = ChaCha8Rng::seed_from_u64(33);
        let edp_trace = run_random(&edp_ev, &ds.hw_norm, 30, &mut r2);
        // Same seed, same sampled designs: the latency trace's best value is
        // the min latency over those designs, which lower-bounds the latency
        // of the EDP trace's best design.
        let best_lat = lat_trace.best_value().expect("valid");
        let edp_best_point = edp_trace.best_point().expect("point");
        let cfg = edp_ev.snap(edp_best_point, &ds.hw_norm);
        let edp_best_latency = edp_ev
            .workload_eval(&cfg)
            .expect("valid")
            .total_latency_cycles;
        assert!(best_lat <= edp_best_latency + 1e-9);
    }

    #[test]
    fn network_gd_objective_gradient_checks_and_flow_runs() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let ev = f.evaluator();

        // Gradient check against finite differences.
        let rows: Vec<Vec<f64>> = f
            .layers
            .iter()
            .map(|l| ds.layer_norm.transform_row(&l.features()))
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let layers_n = vaesa_nn::Tensor::from_rows(&refs);
        let lat_affine = (ds.latency_norm.log_range()[0], ds.latency_norm.log_min()[0]);
        let en_affine = (ds.energy_norm.log_range()[0], ds.energy_norm.log_min()[0]);
        let z = [0.3, -0.2];
        let (v, grad) = model.predicted_network_edp_grad(&z, &layers_n, lat_affine, en_affine);
        assert!(v.is_finite());
        let eps = 1e-6;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i] += eps;
            let (vp, _) = model.predicted_network_edp_grad(&zp, &layers_n, lat_affine, en_affine);
            zp[i] = z[i] - eps;
            let (vm, _) = model.predicted_network_edp_grad(&zp, &layers_n, lat_affine, en_affine);
            let numeric = (vp - vm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-5 * (1.0 + numeric.abs()),
                "dim {i}: analytic {} vs numeric {numeric}",
                grad[i]
            );
        }

        // The flow produces a full trace of valid decoded designs.
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let trace = run_vae_gd_network(&ev, &model, &ds, 4, GdConfig::default(), &mut rng);
        assert_eq!(trace.label(), "vae_gd_network");
        assert_eq!(trace.len(), 4);
        assert!(trace.best_value().is_some());
    }

    #[test]
    fn evolutionary_flows_run_and_label() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let ev = f.evaluator();
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let t1 = run_evo(&ev, &ds.hw_norm, 25, &mut rng);
        assert_eq!(t1.label(), "evo");
        assert_eq!(t1.len(), 25);
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let t2 = run_vae_evo(&ev, &model, &ds, 25, &mut rng);
        assert_eq!(t2.label(), "vae_evo");
        assert!(t2.best_value().is_some());
    }

    #[test]
    fn coordinate_descent_improves_and_respects_budget() {
        let f = Fixture::new();
        let ev = f.evaluator();
        let ds = f.dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(49);
        let trace = run_coordinate_descent(&ev, &ds.hw_norm, 60, &mut rng);
        assert_eq!(trace.label(), "cd");
        assert_eq!(trace.len(), 60);
        let best = trace.best_value().expect("found valid designs");
        // Better than its own first valid sample (descent did something).
        let first = trace
            .samples()
            .iter()
            .find_map(|s| s.value)
            .expect("some valid start");
        assert!(best <= first);
    }

    #[test]
    fn annealing_flows_run_and_label() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let ev = f.evaluator();
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let t1 = run_annealing(&ev, &ds.hw_norm, 25, &mut rng);
        assert_eq!(t1.label(), "sa");
        assert_eq!(t1.len(), 25);
        assert!(t1.best_value().is_some());
        let mut rng = ChaCha8Rng::seed_from_u64(48);
        let t2 = run_vae_annealing(&ev, &model, &ds, 25, &mut rng);
        assert_eq!(t2.label(), "vae_sa");
        assert!(t2.best_value().is_some());
    }

    #[test]
    fn decode_always_yields_legal_configs() {
        let f = Fixture::new();
        let ds = f.dataset();
        let model = f.trained_model(&ds);
        let mut rng = ChaCha8Rng::seed_from_u64(28);
        let space = latent_box(&model, &ds);
        let ev = f.evaluator();
        for _ in 0..20 {
            let z = space.sample(&mut rng);
            let config = decode_to_config(&model, &z, &ds.hw_norm, &ev);
            // Index validity is enforced by construction; describe() must work.
            let arch = f.space.describe(&config);
            assert!(arch.pe_count >= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Snap must return a design inside the space for *any* normalized
        /// row — including rows far outside `[0, 1]^6`, which search
        /// engines and the decoder can both produce.
        #[test]
        fn snap_always_lands_inside_the_design_space(
            row in proptest::collection::vec(-4.0f64..5.0, 6usize)
        ) {
            let space = DesignSpace::coarse(4);
            let scheduler = CachedScheduler::default();
            let layers = vec![vaesa_accel::workloads::alexnet()[2].clone()];
            let ev = HardwareEvaluator::new(&space, &scheduler, &layers);
            // A normalizer with a feature-like spread (values spanning
            // orders of magnitude); fitting it per case is cheap.
            let hw_norm = Normalizer::fit(&[
                vec![4.0, 16.0, 1024.0, 65536.0, 2.0, 8.0],
                vec![1024.0, 4096.0, 1_048_576.0, 33_554_432.0, 64.0, 512.0],
            ]);
            let config = ev.snap(&row, &hw_norm);
            let indices = config.indices();
            for (axis, &param) in ArchParam::ALL.iter().enumerate() {
                prop_assert!(
                    indices[axis] < space.num_values(param),
                    "axis {} index {} out of range",
                    axis,
                    indices[axis]
                );
            }
            // The snapped design is fully describable (all derived fields).
            let arch = space.describe(&config);
            prop_assert!(arch.pe_count >= 1);
        }
    }
}
