#![deny(missing_docs)]
//! VAESA: a variational-autoencoder-based design-space-exploration
//! framework for DNN accelerators — the core contribution of
//! *"Learning A Continuous and Reconstructible Latent Space for Hardware
//! Accelerator Design"* (ISPASS 2022), reimplemented in Rust.
//!
//! The pipeline (Figure 3 of the paper):
//!
//! 1. [`DatasetBuilder`] samples the discrete design space, labels each
//!    `(architecture, layer)` pair through the CoSA-style scheduler and the
//!    Timeloop-style cost model, and normalizes everything with
//!    [`Normalizer`] (log + min–max, §IV-A4).
//! 2. [`VaesaModel`] — a symmetric MLP VAE over the 6 hardware features with
//!    latency/energy predictor heads conditioned on `(z, layer)` — trains
//!    end to end via [`Trainer`] with the joint loss
//!    `L = L_recon + α·L_kld + L_lat + L_en` (Eqs. 1–2).
//! 3. The [`driver`] module runs design-space exploration: a single
//!    [`DseDriver`] evaluates any [`SearchEngine`](vaesa_dse::SearchEngine)
//!    (`random`, `bo`, `evo`, `sa`, `cd`, `gd`) in either the normalized
//!    input space or the VAE latent box ([`SpaceMode`]). Every candidate is
//!    decoded/snapped back to a *legal* hardware configuration before
//!    scoring — the "reconstructible" property in the paper's title. The
//!    [`flows`] module keeps the named per-flow entry points (`run_vae_bo`,
//!    `run_vae_gd`, ...) as thin shims over the driver.
//! 4. [`interpolate`] probes latent-space smoothness between the worst and
//!    best designs (Figures 7–8).
//!
//! # Examples
//!
//! ```no_run
//! use rand::SeedableRng;
//! use vaesa::{DatasetBuilder, Trainer, VaesaConfig, VaesaModel};
//! use vaesa::flows::{run_vae_bo, HardwareEvaluator};
//! use vaesa_accel::{workloads, DesignSpace};
//! use vaesa_cosa::CachedScheduler;
//!
//! let space = DesignSpace::paper();
//! let scheduler = CachedScheduler::default();
//! let layers = workloads::alexnet();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//!
//! // 1. Dataset.
//! let dataset = DatasetBuilder::new(&space, layers.clone())
//!     .random_configs(500)
//!     .build(&scheduler, &mut rng);
//! // 2. Train.
//! let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
//! Trainer::default().train_vae(&mut model, &dataset, &mut rng);
//! // 3. Search the latent space.
//! let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);
//! let trace = run_vae_bo(&evaluator, &model, &dataset, 200, &mut rng);
//! println!("best EDP: {:?}", trace.best_value());
//! ```

mod dataset;
pub mod driver;
pub mod flows;
pub mod interpolate;
mod model;
mod normalize;
pub mod pareto;
mod persist;
pub mod report;
#[cfg(test)]
pub(crate) mod testutil;
mod trainer;

pub use dataset::{Dataset, DatasetBuilder, Record};
pub use driver::{BatchEdpObjective, DseDriver, SpaceMode};
pub use model::{EdpGradBatch, TrainStep, VaesaConfig, VaesaModel, HW_FEATURES, LAYER_FEATURES};
pub use normalize::Normalizer;
pub use persist::{CheckpointNormalizers, ModelCheckpoint, PersistError};
pub use trainer::{Convergence, EpochStats, History, InputPredictors, TrainConfig, Trainer};
