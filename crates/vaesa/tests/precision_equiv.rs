//! Tolerance-gated f32-vs-f64 equivalence for the end-to-end model paths
//! the precision mode reroutes: training losses and gradients, batched EDP
//! proxy predictions, and the end-of-search best value of a gradient
//! descent over the predictor heads.
//!
//! Every test flips the process-global precision, so they all serialize on
//! one mutex and restore f64 on drop (panic included). The tolerances here
//! are the documented contract of `VAESA_PRECISION=f32` (see the
//! "Precision policy" section of DESIGN.md): they are roughly 10x the
//! worst drift observed on the AVX-512 container this suite was tuned on,
//! leaving headroom for other SIMD tiers whose rounding differs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Mutex, MutexGuard};
use vaesa::{EdpGradBatch, VaesaConfig, VaesaModel};
use vaesa_dse::{BoxSpace, FnBatchDifferentiable, GdConfig, GradientDescent};
use vaesa_nn::{randn, set_precision, Graph, Precision};

static PRECISION_LOCK: Mutex<()> = Mutex::new(());

/// Holds the suite mutex with the global mode at the given precision;
/// restores f64 when dropped.
struct PrecisionGuard<'a> {
    _lock: MutexGuard<'a, ()>,
}

impl PrecisionGuard<'_> {
    fn lock() -> Self {
        let lock = PRECISION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_precision(Precision::F64);
        PrecisionGuard { _lock: lock }
    }
}

impl Drop for PrecisionGuard<'_> {
    fn drop(&mut self) {
        set_precision(Precision::F64);
    }
}

fn paper_model(seed: u64) -> VaesaModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    VaesaModel::new(VaesaConfig::paper(), &mut rng)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Training losses (total, recon, KLD, latency, energy) computed with the
/// f32 backend stay within 1e-3 of the f64 reference, and the input
/// gradients the VAE trains on stay within 1e-3 element-wise.
#[test]
fn train_step_losses_and_gradients_track_f64() {
    let _mode = PrecisionGuard::lock();
    let model = paper_model(17);
    let mut rng = ChaCha8Rng::seed_from_u64(18);
    let batch = 64;
    let dz = model.latent_dim();
    let hw = randn(batch, 6, &mut rng);
    let layer = randn(batch, 8, &mut rng);
    let eps = randn(batch, dz, &mut rng);
    let lat = randn(batch, 1, &mut rng);
    let en = randn(batch, 1, &mut rng);

    let run = |model: &VaesaModel| {
        let mut g = Graph::new();
        let step = model.train_step(
            &mut g,
            hw.clone(),
            layer.clone(),
            eps.clone(),
            lat.clone(),
            en.clone(),
        );
        let losses = [
            g.value(step.total).get(0, 0),
            g.value(step.recon).get(0, 0),
            g.value(step.kld).get(0, 0),
            g.value(step.latency).get(0, 0),
            g.value(step.energy).get(0, 0),
        ];
        g.backward(step.total);
        let hw_grad = g
            .grad(step.input_leaves[0])
            .expect("hw leaf receives a gradient")
            .clone()
            .into_vec();
        (losses, hw_grad)
    };

    let (losses64, grad64) = run(&model);
    set_precision(Precision::F32);
    let (losses32, grad32) = run(&model);

    for (name, (l64, l32)) in ["total", "recon", "kld", "latency", "energy"]
        .iter()
        .zip(losses64.iter().zip(&losses32))
    {
        assert!(
            (l64 - l32).abs() <= 1e-3 * (1.0 + l64.abs()),
            "{name} loss drift: f64 {l64} vs f32 {l32}"
        );
    }
    let worst = max_abs_diff(&grad64, &grad32);
    assert!(worst <= 1e-3, "input-gradient drift {worst} exceeds 1e-3");
}

/// Batched EDP proxy values and z-gradients under f32 stay within 1e-3 of
/// the f64 reference (relative on values, absolute on gradients — the
/// gradient magnitudes are O(1) for the paper config).
#[test]
fn edp_proxy_predictions_track_f64() {
    let _mode = PrecisionGuard::lock();
    let model = paper_model(23);
    let batch = 64;
    let dz = model.latent_dim();
    let layer = [0.4; 8];
    let zs: Vec<f64> = (0..batch * dz).map(|i| (i as f64 * 0.37).sin()).collect();

    let mut scratch = EdpGradBatch::default();
    let (v64, g64) = model.predicted_edp_grad_batch(&zs, batch, &layer, 1.0, 1.0, &mut scratch);
    set_precision(Precision::F32);
    let (v32, g32) = model.predicted_edp_grad_batch(&zs, batch, &layer, 1.0, 1.0, &mut scratch);

    for (r, (a, b)) in v64.iter().zip(&v32).enumerate() {
        assert!(
            (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
            "proxy value row {r}: f64 {a} vs f32 {b}"
        );
    }
    let worst = max_abs_diff(&g64, &g32);
    assert!(worst <= 1e-3, "proxy gradient drift {worst} exceeds 1e-3");
}

/// A full latent-space descent (the `vae_gd` loop) run in f32 mode lands
/// within 1e-2 relative of the f64 end-of-search best value. The paths are
/// not required to match step-for-step — rounding differences can steer
/// slightly different trajectories — only the search outcome is gated.
#[test]
fn end_of_search_best_edp_tracks_f64() {
    let _mode = PrecisionGuard::lock();
    let model = paper_model(29);
    let dz = model.latent_dim();
    let layer = [0.4; 8];
    let starts: Vec<Vec<f64>> = (0..8)
        .map(|r| {
            (0..dz)
                .map(|d| ((r * dz + d) as f64 * 0.61).cos())
                .collect()
        })
        .collect();

    let run_search = |model: &VaesaModel| {
        let mut scratch = EdpGradBatch::default();
        let mut objective = FnBatchDifferentiable::new(dz, |xs: &[f64], batch: usize| {
            model.predicted_edp_grad_batch(xs, batch, &layer, 1.0, 1.0, &mut scratch)
        });
        let gd = GradientDescent::new(
            BoxSpace::symmetric(dz, 2.0),
            GdConfig {
                steps: 30,
                ..GdConfig::default()
            },
        );
        let paths = gd.run_batch(&mut objective, &starts);
        paths
            .iter()
            .map(|p| p.final_value())
            .fold(f64::INFINITY, f64::min)
    };

    let best64 = run_search(&model);
    set_precision(Precision::F32);
    let best32 = run_search(&model);

    assert!(
        (best64 - best32).abs() <= 1e-2 * (1.0 + best64.abs()),
        "end-of-search best: f64 {best64} vs f32 {best32}"
    );
}
