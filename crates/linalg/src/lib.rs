#![deny(missing_docs)]
//! Dense linear algebra and statistics substrate for the VAESA reproduction.
//!
//! This crate provides the small set of numerical kernels the rest of the
//! workspace relies on:
//!
//! - [`Matrix`]: a row-major dense `f64` matrix with the usual arithmetic,
//!   products, and views.
//! - [`Cholesky`]: a Cholesky factorization with jitter escalation, used by
//!   the Gaussian-process regression inside Bayesian optimization.
//! - [`triangular`]: blocked multi-right-hand-side triangular solves, the
//!   batched-inference substrate for GP prediction over candidate pools.
//! - [`stats`]: summary statistics (means, standard deviations, quantiles,
//!   correlations) used by the experiment harness and tests.
//! - [`precision`]: the process-global [`Precision`] mode that lets the hot
//!   kernels upstream (NN matmuls, GP fills) run in SIMD `f32` while `f64`
//!   stays the bit-exact default.
//!
//! Everything is pure Rust over `f64`; no BLAS/LAPACK bindings are used.
//!
//! # Examples
//!
//! ```
//! use vaesa_linalg::{Matrix, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
//! let chol = Cholesky::new(&a).unwrap();
//! let x = chol.solve(&[2.0, 1.0]);
//! let ax = a.matvec(&x);
//! assert!((ax[0] - 2.0).abs() < 1e-12 && (ax[1] - 1.0).abs() < 1e-12);
//! ```

mod cholesky;
mod error;
mod matrix;
pub mod precision;
pub mod stats;
pub mod triangular;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use precision::{cpu_features, set_precision, Precision};

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
