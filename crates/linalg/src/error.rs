use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Observed shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite even after adding the maximum jitter.
    NotPositiveDefinite {
        /// The jitter magnitude that was reached before giving up.
        max_jitter: f64,
    },
    /// A constructor was given rows of unequal lengths.
    RaggedRows,
    /// An operation received an empty matrix or vector where data is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { max_jitter } => write!(
                f,
                "matrix is not positive definite (jitter up to {max_jitter:e} did not help)"
            ),
            LinalgError::RaggedRows => write!(f, "rows have unequal lengths"),
            LinalgError::Empty => write!(f, "operation requires non-empty data"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        let e = LinalgError::NotSquare { shape: (3, 4) };
        assert!(e.to_string().contains("3x4"));

        let e = LinalgError::NotPositiveDefinite { max_jitter: 1e-4 };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
