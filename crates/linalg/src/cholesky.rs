use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix,
/// with automatic jitter escalation.
///
/// Gaussian-process kernel matrices are symmetric positive semi-definite and
/// frequently ill-conditioned, so [`Cholesky::new`] retries with an
/// exponentially growing diagonal jitter (starting at `1e-10`, capped at
/// `1e-2` relative to the mean diagonal) before giving up.
///
/// # Examples
///
/// ```
/// use vaesa_linalg::{Matrix, Cholesky};
///
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let l = chol.factor();
/// assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
/// # Ok::<(), vaesa_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    jitter: f64,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, and
    /// [`LinalgError::NotPositiveDefinite`] if factorization fails even after
    /// jitter escalation.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        // One histogram sample per factorization (jitter retries included):
        // an O(n³) operation, so the sample itself is noise.
        let timer = std::time::Instant::now();
        let result = Self::new_timed(a, n);
        vaesa_obs::histogram("linalg.cholesky.factor_ns").record(timer.elapsed().as_nanos() as f64);
        result
    }

    fn new_timed(a: &Matrix, n: usize) -> Result<Self> {
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64;
        let scale = if mean_diag > 0.0 { mean_diag } else { 1.0 };
        let mut jitter = 0.0;
        let max_jitter = 1e-2 * scale;
        loop {
            match Self::factor_with_jitter(a, jitter) {
                Some(l) => return Ok(Cholesky { l, jitter }),
                None => {
                    jitter = if jitter == 0.0 {
                        1e-10 * scale
                    } else {
                        jitter * 10.0
                    };
                    if jitter > max_jitter {
                        return Err(LinalgError::NotPositiveDefinite { max_jitter });
                    }
                }
            }
        }
    }

    fn factor_with_jitter(a: &Matrix, jitter: f64) -> Option<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was added to achieve positive definiteness
    /// (0.0 when none was needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest with indices
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length {} != dim {}", b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` by back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest with indices
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length {} != dim {}", y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Log-determinant of `A`, i.e. `2 * Σ ln L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solves `L Y = B` for every column of `b` in one blocked pass.
    ///
    /// Column `j` of the result is bit-identical to
    /// [`Cholesky::solve_lower`] on column `j` of `b`, at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_lower_multi(&self, b: &Matrix) -> Result<Matrix> {
        self.check_multi_rhs(b, "solve_lower_multi")?;
        let timer = std::time::Instant::now();
        let mut out = b.clone();
        crate::triangular::solve_lower_multi_dense(&self.l, &mut out);
        vaesa_obs::histogram("linalg.cholesky.solve_ns").record(timer.elapsed().as_nanos() as f64);
        Ok(out)
    }

    /// Solves `Lᵀ X = Y` for every column of `b` in one blocked pass.
    ///
    /// Column `j` of the result is bit-identical to
    /// [`Cholesky::solve_upper`] on column `j` of `b`, at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_upper_multi(&self, b: &Matrix) -> Result<Matrix> {
        self.check_multi_rhs(b, "solve_upper_multi")?;
        let timer = std::time::Instant::now();
        let mut out = b.clone();
        crate::triangular::solve_upper_multi_dense(&self.l, &mut out);
        vaesa_obs::histogram("linalg.cholesky.solve_ns").record(timer.elapsed().as_nanos() as f64);
        Ok(out)
    }

    /// Solves `A X = B` via one multi-RHS forward and one multi-RHS back
    /// substitution (bit-identical to solving column by column).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        self.check_multi_rhs(b, "solve_matrix")?;
        let mut out = b.clone();
        crate::triangular::solve_lower_multi_dense(&self.l, &mut out);
        crate::triangular::solve_upper_multi_dense(&self.l, &mut out);
        Ok(out)
    }

    fn check_multi_rhs(&self, b: &Matrix, op: &'static str) -> Result<()> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                left: (self.dim(), self.dim()),
                right: b.shape(),
                op,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        let chol = Cholesky::new(&spd3()).unwrap();
        let l = chol.factor();
        let expected =
            Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]).unwrap();
        assert!(l.approx_eq(&expected, 1e-12));
        assert_eq!(chol.jitter(), 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        let b = a.matvec(&x);
        for (got, want) in b.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(A) = (5*3*3)^2 = 2025 for the spd3 factor above.
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!((chol.log_det() - 2025f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn near_singular_recovers_with_jitter() {
        // Rank-1 matrix + tiny diagonal: jitter escalation should succeed.
        let mut m = Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m[(r, c)] = 2.0; // rank one, PSD but singular
            }
        }
        let chol = Cholesky::new(&m).unwrap();
        // Depending on rounding, the factorization may succeed with zero
        // jitter or require escalation; either way it must stay usable.
        let x = chol.solve(&[1.0, 1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let inv = chol.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn multi_rhs_solves_match_single_rhs_bitwise() {
        let a = spd3();
        let chol = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 0.25, -1.0], &[-0.75, 4.0, 2.0]])
            .unwrap();
        let lower = chol.solve_lower_multi(&b).unwrap();
        let upper = chol.solve_upper_multi(&b).unwrap();
        let full = chol.solve_matrix(&b).unwrap();
        for c in 0..3 {
            let col = b.col(c);
            let yl = chol.solve_lower(&col);
            let yu = chol.solve_upper(&col);
            let ys = chol.solve(&col);
            for r in 0..3 {
                assert_eq!(lower[(r, c)].to_bits(), yl[r].to_bits());
                assert_eq!(upper[(r, c)].to_bits(), yu[r].to_bits());
                assert_eq!(full[(r, c)].to_bits(), ys[r].to_bits());
            }
        }
    }

    #[test]
    fn solve_matrix_shape_mismatch() {
        let chol = Cholesky::new(&spd3()).unwrap();
        assert!(chol.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }
}
