//! Blocked multi-right-hand-side triangular solves.
//!
//! One K*-matrix solve replaces hundreds of per-candidate vector solves in
//! the Gaussian-process prediction hot path. The right-hand sides sit in the
//! columns of a row-major matrix, so the innermost loop runs contiguously
//! across RHS columns and vectorizes; the factor entry `L[i][k]` is loaded
//! once per row pair instead of once per RHS.
//!
//! Per column, the accumulation order and the final division are exactly the
//! sequence the single-RHS solves perform (subtract `L[i][k]·y[k]` for
//! `k = 0..i` in order, then divide by the diagonal), so batched results are
//! bit-identical to per-column solves — at any thread count, because columns
//! are arithmetically independent and the parallel path only partitions them.
//!
//! Forward substitution additionally processes output rows in blocks of
//! [`ROW_BLOCK`]: each already-solved row streams through cache once per
//! block instead of once per output row, and the fused update applies it to
//! all rows of the block. For a fixed output element the subtractions still
//! arrive in increasing-`k` order, so blocking never changes a single bit.
//! On `x86_64` the row-update kernels dispatch to an AVX-compiled copy at
//! runtime; wider registers execute the same IEEE operations, so results
//! are identical with or without it.

use crate::Matrix;

/// Minimum `n²·m` volume before the column blocks fan out across the thread
/// pool; below this the fan-out costs more than the work it hides.
const PAR_MIN_FLOPS: usize = 1 << 20;

/// Output rows advanced together by the blocked forward substitution. Four
/// rows share each streamed prior row while staying comfortably inside L1
/// alongside it for the RHS widths the DSE hot paths use.
const ROW_BLOCK: usize = 4;

/// `y[j] -= c · p[j]` across one row pair.
#[inline(always)]
fn axpy_sub_body(y: &mut [f64], p: &[f64], c: f64) {
    for (y, &p) in y.iter_mut().zip(p) {
        *y -= c * p;
    }
}

/// One streamed prior row `p` applied to four in-progress rows at once.
#[inline(always)]
fn axpy_sub4_body(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    p: &[f64],
    c: [f64; 4],
) {
    let len = p.len();
    assert!(y0.len() == len && y1.len() == len && y2.len() == len && y3.len() == len);
    for j in 0..len {
        let pj = p[j];
        y0[j] -= c[0] * pj;
        y1[j] -= c[1] * pj;
        y2[j] -= c[2] * pj;
        y3[j] -= c[3] * pj;
    }
}

/// Two consecutive prior rows applied to four in-progress rows: each output
/// element is loaded and stored once for both updates, and the two
/// subtractions happen in `pa`-then-`pb` order — the same sequence two
/// [`axpy_sub4_body`] calls would perform.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat slices keep the kernel registerizable
fn axpy_sub4x2_body(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    pa: &[f64],
    pb: &[f64],
    ca: [f64; 4],
    cb: [f64; 4],
) {
    let len = pa.len();
    assert!(
        pb.len() == len && y0.len() == len && y1.len() == len && y2.len() == len && y3.len() == len
    );
    for j in 0..len {
        let a = pa[j];
        let b = pb[j];
        y0[j] = (y0[j] - ca[0] * a) - cb[0] * b;
        y1[j] = (y1[j] - ca[1] * a) - cb[1] * b;
        y2[j] = (y2[j] - ca[2] * a) - cb[2] * b;
        y3[j] = (y3[j] - ca[3] * a) - cb[3] * b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_sub_avx512(y: &mut [f64], p: &[f64], c: f64) {
    axpy_sub_body(y, p, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_sub_avx(y: &mut [f64], p: &[f64], c: f64) {
    axpy_sub_body(y, p, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_sub4_avx512(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    p: &[f64],
    c: [f64; 4],
) {
    axpy_sub4_body(y0, y1, y2, y3, p, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_sub4_avx(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    p: &[f64],
    c: [f64; 4],
) {
    axpy_sub4_body(y0, y1, y2, y3, p, c);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn axpy_sub4x2_avx512(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    pa: &[f64],
    pb: &[f64],
    ca: [f64; 4],
    cb: [f64; 4],
) {
    axpy_sub4x2_body(y0, y1, y2, y3, pa, pb, ca, cb);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn axpy_sub4x2_avx(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    pa: &[f64],
    pb: &[f64],
    ca: [f64; 4],
    cb: [f64; 4],
) {
    axpy_sub4x2_body(y0, y1, y2, y3, pa, pb, ca, cb);
}

#[inline]
fn axpy_sub(y: &mut [f64], p: &[f64], c: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by runtime feature detection.
        if is_x86_feature_detected!("avx512f") {
            return unsafe { axpy_sub_avx512(y, p, c) };
        }
        if is_x86_feature_detected!("avx") {
            return unsafe { axpy_sub_avx(y, p, c) };
        }
    }
    axpy_sub_body(y, p, c)
}

#[inline]
fn axpy_sub4(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    p: &[f64],
    c: [f64; 4],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by runtime feature detection.
        if is_x86_feature_detected!("avx512f") {
            return unsafe { axpy_sub4_avx512(y0, y1, y2, y3, p, c) };
        }
        if is_x86_feature_detected!("avx") {
            return unsafe { axpy_sub4_avx(y0, y1, y2, y3, p, c) };
        }
    }
    axpy_sub4_body(y0, y1, y2, y3, p, c)
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy_sub4x2(
    y0: &mut [f64],
    y1: &mut [f64],
    y2: &mut [f64],
    y3: &mut [f64],
    pa: &[f64],
    pb: &[f64],
    ca: [f64; 4],
    cb: [f64; 4],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by runtime feature detection.
        if is_x86_feature_detected!("avx512f") {
            return unsafe { axpy_sub4x2_avx512(y0, y1, y2, y3, pa, pb, ca, cb) };
        }
        if is_x86_feature_detected!("avx") {
            return unsafe { axpy_sub4x2_avx(y0, y1, y2, y3, pa, pb, ca, cb) };
        }
    }
    axpy_sub4x2_body(y0, y1, y2, y3, pa, pb, ca, cb)
}

/// `y[j] /= d` across one row.
#[inline(always)]
fn div_row(y: &mut [f64], d: f64) {
    for y in y.iter_mut() {
        *y /= d;
    }
}

/// Offset of row `i` in a packed row-major lower triangle (row `i` holds
/// `i + 1` entries).
#[inline]
pub fn packed_row_offset(i: usize) -> usize {
    i * (i + 1) / 2
}

/// Number of entries in a packed lower triangle of dimension `n`.
#[inline]
pub fn packed_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// How the lower-triangular factor is laid out in its backing slice.
#[derive(Debug, Clone, Copy)]
enum TriLayout {
    /// Packed rows: row `i` starts at `i(i+1)/2` and holds `i + 1` entries.
    Packed,
    /// Dense row-major `n x n` storage; entries above the diagonal ignored.
    Dense { n: usize },
}

impl TriLayout {
    #[inline]
    fn row_offset(self, i: usize) -> usize {
        match self {
            TriLayout::Packed => packed_row_offset(i),
            TriLayout::Dense { n } => i * n,
        }
    }
}

/// Forward substitution `L Y = B` on one row-major `n x m` block, in place.
///
/// Rows advance in blocks of [`ROW_BLOCK`]: the updates from already-solved
/// rows (`k < i0`) are applied to the whole block first — one streamed pass
/// over the prior rows instead of one per output row — and the triangular
/// dependencies inside the block are resolved afterwards. Per output element
/// the subtraction order is still `k = 0..i` ascending, then the division.
fn forward_block(l: &[f64], layout: TriLayout, n: usize, data: &mut [f64], m: usize) {
    let mut i0 = 0;
    while i0 < n {
        let ib = ROW_BLOCK.min(n - i0);
        let (prior, rest) = data.split_at_mut(i0 * m);
        let block = &mut rest[..ib * m];
        // Phase 1: contributions from all fully-solved rows, k ascending.
        if ib == ROW_BLOCK {
            let (y0, tail) = block.split_at_mut(m);
            let (y1, tail) = tail.split_at_mut(m);
            let (y2, y3) = tail.split_at_mut(m);
            let offs = [
                layout.row_offset(i0),
                layout.row_offset(i0 + 1),
                layout.row_offset(i0 + 2),
                layout.row_offset(i0 + 3),
            ];
            let coeffs = |k: usize| {
                [
                    l[offs[0] + k],
                    l[offs[1] + k],
                    l[offs[2] + k],
                    l[offs[3] + k],
                ]
            };
            let mut k = 0;
            while k + 1 < i0 {
                let (pa, pb) = prior[k * m..(k + 2) * m].split_at(m);
                axpy_sub4x2(y0, y1, y2, y3, pa, pb, coeffs(k), coeffs(k + 1));
                k += 2;
            }
            if k < i0 {
                axpy_sub4(y0, y1, y2, y3, &prior[k * m..(k + 1) * m], coeffs(k));
            }
        } else {
            for r in 0..ib {
                let off = layout.row_offset(i0 + r);
                let row_r = &mut block[r * m..(r + 1) * m];
                for k in 0..i0 {
                    axpy_sub(row_r, &prior[k * m..(k + 1) * m], l[off + k]);
                }
            }
        }
        // Phase 2: triangular dependencies inside the block, then divide.
        for r in 0..ib {
            let i = i0 + r;
            let off = layout.row_offset(i);
            let (done, row_i) = block.split_at_mut(r * m);
            let row_i = &mut row_i[..m];
            for q in 0..r {
                axpy_sub(row_i, &done[q * m..(q + 1) * m], l[off + i0 + q]);
            }
            div_row(row_i, l[off + i]);
        }
        i0 += ib;
    }
}

/// Back substitution `Lᵀ X = Y` on one row-major `n x m` block, in place.
fn backward_block(l: &[f64], layout: TriLayout, n: usize, data: &mut [f64], m: usize) {
    for i in (0..n).rev() {
        let (head, tail) = data.split_at_mut((i + 1) * m);
        let row_i = &mut head[i * m..];
        for k in (i + 1)..n {
            let lki = l[layout.row_offset(k) + i];
            axpy_sub(row_i, &tail[(k - i - 1) * m..(k - i) * m], lki);
        }
        div_row(row_i, l[layout.row_offset(i) + i]);
    }
}

/// Runs a triangular solve over all columns of `b`, splitting the columns
/// into per-thread blocks when the problem is large enough. Each block is
/// solved with the same per-column arithmetic, so the split never changes
/// results.
fn solve_multi_dispatch(l: &[f64], layout: TriLayout, n: usize, b: &mut Matrix, lower: bool) {
    let m = b.cols();
    if n == 0 || m == 0 {
        return;
    }
    let threads = vaesa_par::num_threads();
    if threads > 1 && m >= 2 && n * n * m >= PAR_MIN_FLOPS {
        let ranges = vaesa_par::split_ranges(m, threads.min(m));
        let src = b.as_slice();
        let solved: Vec<Vec<f64>> = vaesa_par::par_map(&ranges, |r| {
            let w = r.len();
            let mut block = vec![0.0; n * w];
            for i in 0..n {
                block[i * w..(i + 1) * w].copy_from_slice(&src[i * m + r.start..i * m + r.end]);
            }
            if lower {
                forward_block(l, layout, n, &mut block, w);
            } else {
                backward_block(l, layout, n, &mut block, w);
            }
            block
        });
        let dst = b.as_mut_slice();
        for (r, block) in ranges.iter().zip(solved) {
            let w = r.len();
            for i in 0..n {
                dst[i * m + r.start..i * m + r.end].copy_from_slice(&block[i * w..(i + 1) * w]);
            }
        }
    } else if lower {
        forward_block(l, layout, n, b.as_mut_slice(), m);
    } else {
        backward_block(l, layout, n, b.as_mut_slice(), m);
    }
}

fn check_shapes(l_len: usize, n: usize, b: &Matrix) {
    assert_eq!(
        l_len,
        packed_len(n),
        "packed triangle length {} != n(n+1)/2 for n = {n}",
        l_len
    );
    assert_eq!(b.rows(), n, "rhs has {} rows, factor dim {n}", b.rows());
}

/// Solves `L Y = B` in place for every column of `b` (`n x m`), where `l`
/// is a packed row-major lower triangle of dimension `n`.
///
/// Column `j` of the result is bit-identical to a single-RHS forward
/// substitution on column `j` of `b`, at any thread count.
///
/// # Panics
///
/// Panics if `l.len() != n(n+1)/2` or `b.rows() != n`.
pub fn solve_lower_multi(l: &[f64], n: usize, b: &mut Matrix) {
    check_shapes(l.len(), n, b);
    solve_multi_dispatch(l, TriLayout::Packed, n, b, true);
}

/// Solves `Lᵀ X = Y` in place for every column of `b` (`n x m`), where `l`
/// is a packed row-major lower triangle of dimension `n`.
///
/// Column `j` of the result is bit-identical to a single-RHS back
/// substitution on column `j` of `b`, at any thread count.
///
/// # Panics
///
/// Panics if `l.len() != n(n+1)/2` or `b.rows() != n`.
pub fn solve_upper_multi(l: &[f64], n: usize, b: &mut Matrix) {
    check_shapes(l.len(), n, b);
    solve_multi_dispatch(l, TriLayout::Packed, n, b, false);
}

/// [`solve_lower_multi`] for a dense row-major `n x n` lower-triangular
/// factor (entries above the diagonal are ignored).
pub(crate) fn solve_lower_multi_dense(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    solve_multi_dispatch(l.as_slice(), TriLayout::Dense { n }, n, b, true);
}

/// [`solve_upper_multi`] for a dense row-major `n x n` lower-triangular
/// factor (entries above the diagonal are ignored).
pub(crate) fn solve_upper_multi_dense(l: &Matrix, b: &mut Matrix) {
    let n = l.rows();
    solve_multi_dispatch(l.as_slice(), TriLayout::Dense { n }, n, b, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random stream for building test systems.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// A well-conditioned packed lower triangle: unit-scale diagonal,
    /// small off-diagonal entries.
    fn random_packed(n: usize, seed: &mut u64) -> Vec<f64> {
        let mut l = Vec::with_capacity(packed_len(n));
        for i in 0..n {
            for _ in 0..i {
                l.push(0.4 * lcg(seed));
            }
            l.push(1.0 + 0.5 * lcg(seed).abs());
        }
        l
    }

    fn random_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = lcg(seed) * 3.0;
        }
        m
    }

    /// Reference single-RHS forward substitution on a packed triangle.
    fn solve_lower_single(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        for i in 0..n {
            let off = packed_row_offset(i);
            let mut sum = y[i];
            for k in 0..i {
                sum -= l[off + k] * y[k];
            }
            y[i] = sum / l[off + i];
        }
        y
    }

    /// Reference single-RHS back substitution on a packed triangle.
    fn solve_upper_single(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= l[packed_row_offset(k) + i] * x[k];
            }
            x[i] = sum / l[packed_row_offset(i) + i];
        }
        x
    }

    #[test]
    fn multi_solves_match_single_rhs_bitwise() {
        let mut seed = 7u64;
        for (n, m) in [(1, 1), (3, 5), (17, 9), (40, 33)] {
            let l = random_packed(n, &mut seed);
            let b = random_matrix(n, m, &mut seed);
            let mut lower = b.clone();
            solve_lower_multi(&l, n, &mut lower);
            let mut upper = b.clone();
            solve_upper_multi(&l, n, &mut upper);
            for j in 0..m {
                let col: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
                let yl = solve_lower_single(&l, n, &col);
                let yu = solve_upper_single(&l, n, &col);
                for i in 0..n {
                    assert_eq!(lower[(i, j)].to_bits(), yl[i].to_bits(), "lower ({i},{j})");
                    assert_eq!(upper[(i, j)].to_bits(), yu[i].to_bits(), "upper ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn parallel_split_is_bit_identical_to_serial() {
        // Large enough to cross PAR_MIN_FLOPS so the ranged path runs.
        let mut seed = 11u64;
        let n = 120;
        let m = 96;
        let l = random_packed(n, &mut seed);
        let b = random_matrix(n, m, &mut seed);
        std::env::set_var("VAESA_THREADS", "1");
        let mut base = b.clone();
        solve_lower_multi(&l, n, &mut base);
        solve_upper_multi(&l, n, &mut base);
        for threads in ["2", "5"] {
            std::env::set_var("VAESA_THREADS", threads);
            let mut out = b.clone();
            solve_lower_multi(&l, n, &mut out);
            solve_upper_multi(&l, n, &mut out);
            for (a, b) in base.as_slice().iter().zip(out.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
        std::env::remove_var("VAESA_THREADS");
    }

    #[test]
    fn round_trip_recovers_rhs() {
        let mut seed = 3u64;
        let n = 25;
        let l = random_packed(n, &mut seed);
        let b = random_matrix(n, 7, &mut seed);
        let mut x = b.clone();
        solve_lower_multi(&l, n, &mut x);
        solve_upper_multi(&l, n, &mut x);
        // Multiply back: (L Lᵀ) x should give b.
        for j in 0..7 {
            for i in 0..n {
                // (L Lᵀ)[i][r] = Σ_k L[i][k] L[r][k], k ≤ min(i, r)
                let mut acc = 0.0;
                for r in 0..n {
                    let mut entry = 0.0;
                    for k in 0..=i.min(r) {
                        entry += l[packed_row_offset(i) + k] * l[packed_row_offset(r) + k];
                    }
                    acc += entry * x[(r, j)];
                }
                assert!((acc - b[(i, j)]).abs() < 1e-9, "({i},{j}): {acc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rhs has")]
    fn shape_mismatch_panics() {
        let l = random_packed(4, &mut 1u64);
        let mut b = Matrix::zeros(3, 2);
        solve_lower_multi(&l, 4, &mut b);
    }

    #[test]
    fn empty_rhs_is_a_no_op() {
        let l = random_packed(4, &mut 5u64);
        let mut b = Matrix::zeros(4, 0);
        solve_lower_multi(&l, 4, &mut b);
        solve_upper_multi(&l, 4, &mut b);
        assert_eq!(b.shape(), (4, 0));
    }

    proptest! {
        /// Multi-RHS solves agree with column-by-column single-RHS solves on
        /// random well-conditioned systems (the satellite-task property).
        #[test]
        fn multi_rhs_agrees_with_per_column(
            n in 1usize..24,
            m in 1usize..12,
            raw in proptest::collection::vec(-1.0f64..1.0, 24 * 25 / 2 + 24 * 12),
        ) {
            // Build the packed factor and RHS from the raw pool.
            let mut l = Vec::with_capacity(packed_len(n));
            let mut it = raw.iter().copied();
            for i in 0..n {
                for _ in 0..i {
                    l.push(0.4 * it.next().unwrap_or(0.3));
                }
                // Diagonal bounded away from zero: well-conditioned.
                l.push(1.0 + it.next().unwrap_or(0.0).abs());
            }
            let mut b = Matrix::zeros(n, m);
            for v in b.as_mut_slice() {
                *v = 2.5 * it.next().unwrap_or(0.7);
            }
            let mut lower = b.clone();
            solve_lower_multi(&l, n, &mut lower);
            let mut upper = b.clone();
            solve_upper_multi(&l, n, &mut upper);
            for j in 0..m {
                let col: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
                let yl = solve_lower_single(&l, n, &col);
                let yu = solve_upper_single(&l, n, &col);
                for i in 0..n {
                    prop_assert_eq!(lower[(i, j)].to_bits(), yl[i].to_bits());
                    prop_assert_eq!(upper[(i, j)].to_bits(), yu[i].to_bits());
                }
            }
        }
    }
}
