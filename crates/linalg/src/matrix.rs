use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container for the Gaussian process in
/// `vaesa-dse` and for finite-difference checks in tests. It stores its data
/// in a flat `Vec<f64>` and exposes shape-checked arithmetic that returns
/// [`LinalgError`] on mismatch.
///
/// # Examples
///
/// ```
/// use vaesa_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok::<(), vaesa_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty input and
    /// [`LinalgError::RaggedRows`] if rows have different lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::RaggedRows);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * k).collect(),
        }
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec length mismatch: matrix has {} cols, vector has {} elements",
            self.cols,
            v.len()
        );
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Returns `true` if `self` and `other` have the same shape and every
    /// element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>12.6} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_and_empty() {
        assert_eq!(
            Matrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]).unwrap_err(),
            LinalgError::RaggedRows
        );
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = sample();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let m = sample();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum[(1, 1)], 10.0);
        let diff = m.sub(&m).unwrap();
        assert_eq!(diff.max_abs(), 0.0);
        let prod = m.hadamard(&m).unwrap();
        assert_eq!(prod[(0, 2)], 9.0);
        assert_eq!(m.scale(2.0)[(1, 0)], 8.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = vec![1.0, 0.5, -1.0];
        let got = m.matvec(&v);
        let col = Matrix::from_vec(3, 1, v).unwrap();
        let want = m.matmul(&col).unwrap();
        assert_eq!(got, want.into_vec());
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-9));
        assert!(!sample().is_symmetric(1e-9));
    }

    #[test]
    fn display_is_nonempty() {
        let txt = format!("{}", sample());
        assert!(txt.contains("2x3"));
    }
}
