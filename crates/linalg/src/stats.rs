//! Summary statistics over `f64` slices.
//!
//! These helpers back the experiment harness (mean ± std curves across seeds,
//! quantiles of latent encodings, predictor-accuracy correlations) and the
//! test suite.
//!
//! All functions treat an empty input as a programming error and return
//! `None` (for scalar summaries) rather than panicking, so callers can
//! surface the condition however they like.

/// Arithmetic mean, or `None` for an empty slice.
///
/// ```
/// assert_eq!(vaesa_linalg::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(vaesa_linalg::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (dividing by `n`), or `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum value, or `None` for an empty slice. NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f64::min)
}

/// Maximum value, or `None` for an empty slice. NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f64::max)
}

/// Linear-interpolated quantile `q in [0, 1]`, or `None` if the slice is
/// empty or `q` is out of range.
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(vaesa_linalg::stats::quantile(&xs, 0.5), Some(2.5));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile), or `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient between two equal-length slices, or
/// `None` if the slices are empty, have different lengths, or either has
/// zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation, or `None` under the same conditions as
/// [`pearson`].
///
/// Ties receive their average rank, matching the conventional definition.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) of the values, with ties sharing their mean rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Tied block [i, j] shares the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Mean and population standard deviation in one pass over several runs'
/// curves: input is a set of equal-length series, output is per-index
/// `(mean, std)` pairs. Returns `None` if the input is empty or ragged.
///
/// This is the exact aggregation the paper uses for its "mean line + std
/// band over 3 random seeds" figures.
pub fn mean_std_curves(series: &[Vec<f64>]) -> Option<Vec<(f64, f64)>> {
    let first = series.first()?;
    let len = first.len();
    if series.iter().any(|s| s.len() != len) {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let column: Vec<f64> = series.iter().map(|s| s[i]).collect();
        out.push((mean(&column)?, std_dev(&column)?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
        assert_eq!(min(&xs), Some(2.0));
        assert_eq!(max(&xs), Some(9.0));
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
        assert_eq!(quantile(&xs, 1.5), None);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0];
        let up = [2.0, 4.0, 6.0];
        let down = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0, 3.0, 4.0]), None);
    }

    #[test]
    fn spearman_is_rank_invariant_to_monotone_transforms() {
        let xs = [1.0f64, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect(); // monotone
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn mean_std_curves_aggregates_per_index() {
        let series = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
        let agg = mean_std_curves(&series).unwrap();
        assert_eq!(agg[0], (2.0, 1.0));
        assert_eq!(agg[1], (10.0, 0.0));
        // Ragged input rejected.
        assert_eq!(mean_std_curves(&[vec![1.0], vec![1.0, 2.0]]), None);
        assert_eq!(mean_std_curves(&[]), None);
    }
}
