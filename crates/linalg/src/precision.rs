//! Process-global compute-precision mode for the numeric substrate.
//!
//! The workspace computes in `f64` by default — that path is the bit-exact
//! reference every gate compares against. Setting the mode to
//! [`Precision::F32`] (programmatically via [`set_precision`] or through the
//! `VAESA_PRECISION=f32` environment variable, read once on first query)
//! reroutes the hot kernels — matmuls, activations, Adam, GP kernel-matrix
//! fills — through SIMD `f32` implementations that trade a documented,
//! tolerance-tested amount of accuracy for throughput. See the
//! "Precision policy" section of `DESIGN.md` for when `f32` is safe and
//! which error bounds the test suite enforces.
//!
//! The mode is a single process-wide atomic: cheap to read on every kernel
//! call, and deterministic under threading because it never changes during
//! a parallel region (callers flip it between runs, not mid-computation).
//!
//! # Examples
//!
//! ```
//! use vaesa_linalg::{set_precision, Precision};
//!
//! assert_eq!(Precision::active().label(), "f64"); // default reference mode
//! set_precision(Precision::F32);
//! assert!(Precision::active().is_f32());
//! set_precision(Precision::F64); // restore the reference mode
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Compute precision for the numeric hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 64-bit floats everywhere — the default, bit-exact reference mode.
    F64,
    /// 32-bit SIMD kernels with f32 accumulation (optionally f64 for
    /// reduction-heavy panels); results stay within documented tolerances
    /// of the f64 reference.
    F32,
}

/// Encoded mode: 0 = uninitialised, 1 = f64, 2 = f32.
static MODE: AtomicU8 = AtomicU8::new(0);

impl Precision {
    /// The currently active precision.
    ///
    /// The first call reads `VAESA_PRECISION` (`"f32"` selects [`Precision::F32`];
    /// anything else, including unset, selects [`Precision::F64`]); later calls
    /// are a single relaxed atomic load.
    pub fn active() -> Precision {
        match MODE.load(Ordering::Relaxed) {
            1 => Precision::F64,
            2 => Precision::F32,
            _ => {
                let from_env = match std::env::var("VAESA_PRECISION") {
                    Ok(v) if v.trim().eq_ignore_ascii_case("f32") => Precision::F32,
                    _ => Precision::F64,
                };
                set_precision(from_env);
                from_env
            }
        }
    }

    /// `true` when the active value is [`Precision::F32`].
    pub fn is_f32(self) -> bool {
        self == Precision::F32
    }

    /// Stable lowercase label (`"f64"` / `"f32"`) for manifests and logs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Sets the process-global precision, overriding the environment default.
///
/// Flip only between computations (e.g. between benchmark cases or test
/// sections), never while a parallel kernel is in flight; tests that flip
/// the mode serialize on their own mutex and restore [`Precision::F64`].
pub fn set_precision(p: Precision) {
    let code = match p {
        Precision::F64 => 1,
        Precision::F32 => 2,
    };
    MODE.store(code, Ordering::Relaxed);
}

/// The SIMD capabilities detected on this machine, as a stable `+`-joined
/// string (e.g. `"avx2+avx512f+fma"`), or `"baseline"` when none of the
/// dispatched features are present (including non-x86 builds).
///
/// Run manifests record this so telemetry history entries group by the
/// hardware that produced them — a median over records from different
/// machines is meaningless for wall-time gates.
pub fn cpu_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
    }
    if feats.is_empty() {
        "baseline".to_string()
    } else {
        feats.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Precision::F64.label(), "f64");
        assert_eq!(Precision::F32.label(), "f32");
        assert!(Precision::F32.is_f32());
        assert!(!Precision::F64.is_f32());
    }

    #[test]
    fn cpu_features_is_nonempty_and_stable() {
        let a = cpu_features();
        let b = cpu_features();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        // Features are either the baseline marker or a +-joined sorted list.
        assert!(a == "baseline" || a.split('+').all(|f| !f.is_empty()));
    }
}
