//! Property tests for the Cholesky factorization over random SPD matrices.

use proptest::prelude::*;
use vaesa_linalg::{Cholesky, Matrix};

/// Builds a random SPD matrix `A = BᵀB + I` from a flat coefficient vector.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, coeffs.to_vec()).expect("square");
    let bt_b = b.transpose().matmul(&b).expect("square product");
    bt_b.add(&Matrix::identity(n)).expect("same shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn factorization_reconstructs_and_solves(
        coeffs in proptest::collection::vec(-3.0f64..3.0, 16),
        rhs in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let chol = Cholesky::new(&a).expect("SPD by construction");

        // L Lᵀ = A
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).expect("square");
        prop_assert!(rec.approx_eq(&a, 1e-8 * (1.0 + a.max_abs())));

        // A x = b round-trips.
        let x = chol.solve(&rhs);
        let b2 = a.matvec(&x);
        for (want, got) in rhs.iter().zip(&b2) {
            prop_assert!((want - got).abs() <= 1e-7 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn log_det_is_sum_of_log_pivots_squared(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 9),
    ) {
        let a = spd_from(&coeffs, 3);
        let chol = Cholesky::new(&a).expect("SPD");
        // det(A) from the 3x3 cofactor expansion.
        let d = |i: usize, j: usize| a[(i, j)];
        let det = d(0, 0) * (d(1, 1) * d(2, 2) - d(1, 2) * d(2, 1))
            - d(0, 1) * (d(1, 0) * d(2, 2) - d(1, 2) * d(2, 0))
            + d(0, 2) * (d(1, 0) * d(2, 1) - d(1, 1) * d(2, 0));
        prop_assert!(det > 0.0);
        prop_assert!((chol.log_det() - det.ln()).abs() <= 1e-6 * (1.0 + det.ln().abs()));
    }

    #[test]
    fn solve_matrix_agrees_with_columnwise_solve(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 9),
        rhs in proptest::collection::vec(-5.0f64..5.0, 6),
    ) {
        let a = spd_from(&coeffs, 3);
        let chol = Cholesky::new(&a).expect("SPD");
        let b = Matrix::from_vec(3, 2, rhs.clone()).expect("3x2");
        let x = chol.solve_matrix(&b).expect("shape ok");
        for col in 0..2 {
            let xc = chol.solve(&b.col(col));
            for row in 0..3 {
                prop_assert!((x[(row, col)] - xc[row]).abs() < 1e-10);
            }
        }
    }
}
