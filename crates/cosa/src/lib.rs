#![deny(missing_docs)]
//! One-shot scheduler producing high-quality mappings for spatial
//! accelerators, in the spirit of CoSA (Huang et al., ISCA 2021).
//!
//! CoSA's contract in the VAESA pipeline is: given a problem and an
//! architecture, return a high-performance mapping *in one shot* — no
//! iterative mapping search. The original solves a mixed-integer program
//! with Gurobi; this reproduction solves the same objective (maximize PE and
//! MAC utilization, minimize data transfer, respect buffer capacities) with
//! a deterministic greedy descent over the tiling factors, scored by the
//! analytical cost model itself. The substitution is documented in
//! `DESIGN.md`; the contract — deterministic, constraint-respecting,
//! quality-optimizing, one mapping per `(arch, layer)` — is identical.
//!
//! # Examples
//!
//! ```
//! use vaesa_cosa::Scheduler;
//! use vaesa_accel::{ArchDescription, LayerShape};
//!
//! let scheduler = Scheduler::default();
//! let arch = ArchDescription {
//!     pe_count: 16, macs_per_pe: 64,
//!     accum_buf_bytes: 8192, weight_buf_bytes: 65536,
//!     input_buf_bytes: 32768, global_buf_bytes: 262144,
//! };
//! let layer = LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1);
//! let scheduled = scheduler.schedule(&arch, &layer)?;
//! assert!(scheduled.evaluation.edp() > 0.0);
//! # Ok::<(), vaesa_cosa::ScheduleError>(())
//! ```

mod mapper;
mod persist;

pub use mapper::{random_mapping, IterativeMapper, MapperConfig};
pub use persist::EvalCacheLog;

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vaesa_accel::{ArchDescription, LayerShape};
use vaesa_timeloop::{CostModel, Evaluation, Mapping};

/// A mapping chosen by the scheduler together with its evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scheduled {
    /// The chosen loop-nest mapping.
    pub mapping: Mapping,
    /// The cost model's evaluation of that mapping.
    pub evaluation: Evaluation,
}

/// Whole-workload cost: per-layer evaluations plus workload totals.
///
/// The paper evaluates a DNN by summing per-layer latency and energy and
/// optimizing the product (EDP) of the sums.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEval {
    /// Per-layer scheduling results, in input order.
    pub layers: Vec<Scheduled>,
    /// Sum of per-layer latencies, in cycles.
    pub total_latency_cycles: f64,
    /// Sum of per-layer energies, in pJ.
    pub total_energy_pj: f64,
}

impl WorkloadEval {
    /// Workload energy-delay product: total latency × total energy.
    pub fn edp(&self) -> f64 {
        self.total_latency_cycles * self.total_energy_pj
    }
}

/// Errors returned by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No mapping satisfies the buffer constraints for this `(arch, layer)`
    /// pair — the design point is invalid for the workload (the paper's
    /// dataset construction drops such points).
    NoValidMapping {
        /// The layer that could not be scheduled.
        layer: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoValidMapping { layer } => {
                write!(f, "no valid mapping exists for layer {layer}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The one-shot scheduler.
///
/// Deterministic: the same `(arch, layer)` always yields the same mapping.
#[derive(Debug, Default)]
pub struct Scheduler {
    model: CostModel,
}

/// The tiling factors the greedy descent may grow, in a fixed order that
/// makes the search deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Factor {
    SpatialK,
    SpatialC,
    P0,
    Q0,
    C0,
    K0,
    P1,
    Q1,
    C1,
    K1,
}

const FACTORS: [Factor; 10] = [
    Factor::SpatialK,
    Factor::SpatialC,
    Factor::P0,
    Factor::Q0,
    Factor::C0,
    Factor::K0,
    Factor::P1,
    Factor::Q1,
    Factor::C1,
    Factor::K1,
];

impl Scheduler {
    /// Creates a scheduler over the given cost model.
    pub fn new(model: CostModel) -> Self {
        Scheduler { model }
    }

    /// The cost model used for scoring.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Produces the mapping for one layer on one architecture.
    ///
    /// Starting from the always-feasible unit mapping, the scheduler
    /// repeatedly doubles whichever tiling or spatial factor most improves
    /// EDP, stopping when no single doubling helps. Factors are capped at
    /// their layer dimensions and every candidate is checked against the
    /// buffer capacities by the cost model.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoValidMapping`] when even the unit mapping
    /// violates a buffer constraint (e.g. a global buffer too small to hold
    /// one filter footprint).
    pub fn schedule(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
    ) -> Result<Scheduled, ScheduleError> {
        self.schedule_from(arch, layer, Mapping::unit())
    }

    /// Like [`Scheduler::schedule`], but additionally searches over the
    /// register-level [`vaesa_timeloop::Dataflow`] choices: one greedy
    /// descent per dataflow, keeping the best result. Costs ~3x the
    /// evaluations of [`Scheduler::schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoValidMapping`] when even the unit mapping
    /// violates a buffer constraint.
    pub fn schedule_with_dataflows(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
    ) -> Result<Scheduled, ScheduleError> {
        let mut best: Option<Scheduled> = None;
        for dataflow in vaesa_timeloop::Dataflow::ALL {
            let start = Mapping {
                dataflow,
                ..Mapping::unit()
            };
            if let Ok(s) = self.schedule_from(arch, layer, start) {
                if best
                    .as_ref()
                    .is_none_or(|b| s.evaluation.edp() < b.evaluation.edp())
                {
                    best = Some(s);
                }
            }
        }
        best.ok_or_else(|| ScheduleError::NoValidMapping {
            layer: layer.name().to_string(),
        })
    }

    fn schedule_from(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
        start: Mapping,
    ) -> Result<Scheduled, ScheduleError> {
        let mut current = start;
        let mut best = match self.model.evaluate(arch, layer, &current) {
            Ok(e) => e,
            Err(_) => {
                return Err(ScheduleError::NoValidMapping {
                    layer: layer.name().to_string(),
                })
            }
        };

        loop {
            let mut best_candidate: Option<(Mapping, Evaluation)> = None;
            for factor in FACTORS {
                let Some(candidate) = Self::grow(&current, factor, arch, layer) else {
                    continue;
                };
                if let Ok(eval) = self.model.evaluate(arch, layer, &candidate) {
                    let bar = best_candidate.as_ref().map_or(best.edp(), |(_, e)| e.edp());
                    if eval.edp() < bar {
                        best_candidate = Some((candidate, eval));
                    }
                }
            }
            match best_candidate {
                Some((m, e)) if e.edp() < best.edp() => {
                    current = m;
                    best = e;
                }
                _ => break,
            }
        }

        Ok(Scheduled {
            mapping: current,
            evaluation: best,
        })
    }

    /// Schedules every layer of a workload and sums latency and energy.
    ///
    /// # Errors
    ///
    /// Fails if any layer has no valid mapping; the paper treats such design
    /// points as invalid for the whole workload.
    pub fn schedule_workload(
        &self,
        arch: &ArchDescription,
        layers: &[LayerShape],
    ) -> Result<WorkloadEval, ScheduleError> {
        let mut out = Vec::with_capacity(layers.len());
        let mut total_latency = 0.0;
        let mut total_energy = 0.0;
        for layer in layers {
            let s = self.schedule(arch, layer)?;
            total_latency += s.evaluation.latency_cycles;
            total_energy += s.evaluation.energy_pj;
            out.push(s);
        }
        Ok(WorkloadEval {
            layers: out,
            total_latency_cycles: total_latency,
            total_energy_pj: total_energy,
        })
    }

    /// Returns `mapping` with `factor` doubled (capped at its dimension), or
    /// `None` if the factor is saturated or the grown tile would grossly
    /// exceed a layer dimension.
    fn grow(
        mapping: &Mapping,
        factor: Factor,
        arch: &ArchDescription,
        layer: &LayerShape,
    ) -> Option<Mapping> {
        let mut m = *mapping;
        let (value, cap): (&mut u64, u64) = match factor {
            Factor::SpatialK => (&mut m.spatial_k, arch.pe_count.min(layer.k)),
            Factor::SpatialC => (&mut m.spatial_c, arch.macs_per_pe.min(layer.c)),
            Factor::P0 => (&mut m.p0, layer.p),
            Factor::Q0 => (&mut m.q0, layer.q),
            Factor::C0 => (&mut m.c0, layer.c),
            Factor::K0 => (&mut m.k0, layer.k),
            Factor::P1 => (&mut m.p1, layer.p),
            Factor::Q1 => (&mut m.q1, layer.q),
            Factor::C1 => (&mut m.c1, layer.c),
            Factor::K1 => (&mut m.k1, layer.k),
        };
        if *value >= cap {
            return None;
        }
        *value = (*value * 2).min(cap);
        // Composite tiles may overshoot their dimension slightly (ceil
        // semantics) but not grossly.
        let ok = m.p_gb() <= 2 * layer.p
            && m.q_gb() <= 2 * layer.q
            && m.c_gb() <= 2 * layer.c
            && m.k_gb() <= 2 * layer.k;
        ok.then_some(m)
    }
}

/// The identity a scheduling result is cached (and persisted) under.
pub type CacheKey = (ArchDescription, LayerShape);

/// Where a memoized entry stands relative to the persistent log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backing {
    /// In-memory only (no persistence attached to this cache).
    None,
    /// Appended to the log by this process (on the miss that created it).
    Logged,
    /// Loaded from the log at startup — written by a previous process.
    Warm,
}

/// One memoized scheduling result plus its second-chance reference bit.
#[derive(Debug)]
struct CacheEntry {
    result: Result<Scheduled, ScheduleError>,
    referenced: bool,
    backing: Backing,
}

/// The mutable cache interior: the memo map plus the eviction clock queue
/// (keys in insertion/recycle order). Both live under one mutex so they can
/// never disagree.
#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<CacheKey, CacheEntry>,
    queue: VecDeque<CacheKey>,
}

/// A scheduler with a bounded memoization cache keyed by `(arch, layer)`.
///
/// Design-space exploration evaluates the same layer on thousands of
/// architectures and frequently revisits architectures (e.g. when BO
/// re-samples a rounded design point); the cache makes repeats free.
/// Thread-safe via an internal mutex.
///
/// The cache holds at most [`CachedScheduler::DEFAULT_CAPACITY`] entries
/// (configurable via [`CachedScheduler::with_capacity`]) and evicts with a
/// second-chance (clock) policy: entries re-hit since they last reached the
/// front of the queue get recycled to the back once before they can be
/// evicted, so hot `(arch, layer)` pairs survive long sweeps of one-off
/// candidates.
#[derive(Debug)]
pub struct CachedScheduler {
    inner: Scheduler,
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    persist: Option<EvalCacheLog>,
    persistent_hits: AtomicU64,
    persistent_warm_hits: AtomicU64,
    flush_on_evict: AtomicU64,
}

impl Default for CachedScheduler {
    fn default() -> Self {
        CachedScheduler::new(Scheduler::default())
    }
}

/// A point-in-time snapshot of a [`CachedScheduler`]'s effectiveness,
/// reported by the experiment binaries at the end of each DSE flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the scheduler.
    pub misses: u64,
    /// Distinct `(arch, layer)` pairs cached.
    pub entries: usize,
    /// Entries dropped by the second-chance eviction policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when none occurred).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries, {} evictions)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions
        )
    }
}

/// A point-in-time snapshot of the persistent evaluation-cache layer, for
/// caches built with [`CachedScheduler::with_persistence`].
///
/// Kept separate from [`CacheStats`] (which describes the in-memory memo
/// table regardless of persistence) so the two layers can be reported and
/// asserted independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries loaded from the log at startup.
    pub loaded: u64,
    /// Torn or malformed log lines dropped (and healed) at startup.
    pub recovered: u64,
    /// Records appended to the log by this process.
    pub appends: u64,
    /// Cache hits on log-backed entries (loaded at startup *or* appended
    /// during this process's lifetime).
    pub hits: u64,
    /// Cache hits on entries written by a *previous* process — the subset
    /// of `hits` that proves the cache survived process death.
    pub warm_hits: u64,
    /// Dirty (not-yet-fsynced) entries flushed to the log at the moment
    /// second-chance eviction would otherwise have discarded them.
    pub flush_on_evict: u64,
}

impl std::fmt::Display for PersistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} loaded, {} appended, {} persistent hits ({} warm, {} flushed on evict, {} lines recovered)",
            self.loaded, self.appends, self.hits, self.warm_hits, self.flush_on_evict, self.recovered
        )
    }
}

impl CachedScheduler {
    /// Default cache bound: large enough that even the full-scale figure
    /// runs rarely evict, small enough to cap memory on long campaigns.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// Wraps a scheduler with an empty cache of
    /// [`CachedScheduler::DEFAULT_CAPACITY`] entries.
    pub fn new(inner: Scheduler) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Wraps a scheduler with an empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a cache that can hold nothing would
    /// turn every lookup into a recompute while still paying the lock).
    pub fn with_capacity(inner: Scheduler, capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        CachedScheduler {
            inner,
            capacity,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist: None,
            persistent_hits: AtomicU64::new(0),
            persistent_warm_hits: AtomicU64::new(0),
            flush_on_evict: AtomicU64::new(0),
        }
    }

    /// Wraps a scheduler with a cache backed by the persistent evaluation
    /// log at `dir` (created if absent). Entries recorded by previous
    /// processes are pre-loaded into the memo table (at most `capacity` of
    /// them), and every miss computed by this cache is appended to the log,
    /// so evaluation work accumulates across process lifetimes.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors opening or compacting the log directory;
    /// damaged log *content* is recovered, not fatal (see
    /// [`EvalCacheLog::open`]).
    pub fn with_persistence(
        inner: Scheduler,
        capacity: usize,
        dir: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let mut cache = Self::with_capacity(inner, capacity);
        let (log, entries) = EvalCacheLog::open(dir)?;
        {
            let state = cache.state.get_mut().expect("cache lock");
            for (key, result) in entries.into_iter().take(capacity) {
                state.queue.push_back(key.clone());
                state.map.insert(
                    key,
                    CacheEntry {
                        result,
                        referenced: false,
                        backing: Backing::Warm,
                    },
                );
            }
        }
        cache.persist = Some(log);
        Ok(cache)
    }

    /// Builds the scheduler the environment asks for: persistent (rooted at
    /// `$VAESA_EVAL_CACHE`) when the variable is set and non-empty,
    /// otherwise a plain in-memory cache. An unusable cache directory is
    /// reported to stderr and degrades to in-memory rather than failing the
    /// run — the cache is an accelerator, never a correctness dependency.
    pub fn from_env() -> Self {
        match std::env::var("VAESA_EVAL_CACHE") {
            Ok(dir) if !dir.is_empty() => {
                match Self::with_persistence(Scheduler::default(), Self::DEFAULT_CAPACITY, &dir) {
                    Ok(cache) => cache,
                    Err(e) => {
                        eprintln!(
                            "vaesa-cosa: VAESA_EVAL_CACHE={dir} is unusable ({e}); \
                             continuing without persistence"
                        );
                        Self::default()
                    }
                }
            }
            _ => Self::default(),
        }
    }

    /// The maximum number of entries the cache will hold.
    pub fn cache_capacity(&self) -> usize {
        self.capacity
    }

    /// The persistent log directory, when persistence is attached.
    pub fn persistence_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|log| log.dir())
    }

    /// Cached version of [`Scheduler::schedule`].
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::schedule`] (errors are cached too).
    pub fn schedule(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
    ) -> Result<Scheduled, ScheduleError> {
        let key = (*arch, layer.clone());
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(entry) = state.map.get_mut(&key) {
                entry.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                match entry.backing {
                    Backing::None => {}
                    Backing::Logged => {
                        self.persistent_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Backing::Warm => {
                        self.persistent_hits.fetch_add(1, Ordering::Relaxed);
                        self.persistent_warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return entry.result.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the lock so concurrent misses schedule in parallel.
        let result = self.inner.schedule(arch, layer);
        let mut state = self.state.lock().expect("cache lock");
        // A concurrent miss on the same key may have inserted first; skip the
        // insert then, or the queue would carry a duplicate key. (The loser
        // also skips the log append — the winner already recorded the key.)
        if !state.map.contains_key(&key) {
            let backing = match &self.persist {
                Some(log) => {
                    log.append(&key, &result);
                    Backing::Logged
                }
                None => Backing::None,
            };
            while state.map.len() >= self.capacity {
                let victim = state.queue.pop_front().expect("queue tracks map");
                let recycled = {
                    let entry = state.map.get_mut(&victim).expect("queued keys are mapped");
                    let hit_since = entry.referenced;
                    entry.referenced = false;
                    hit_since
                };
                if recycled {
                    state.queue.push_back(victim);
                } else {
                    // A dirty victim (appended to the log but not yet
                    // fsynced) must reach disk before the memo table forgets
                    // it, or a crash after eviction would lose the result.
                    if let Some(log) = &self.persist {
                        let logged = state.map.get(&victim).expect("queued keys are mapped");
                        if logged.backing == Backing::Logged && log.flush_key(&victim) {
                            self.flush_on_evict.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    state.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            state.queue.push_back(key.clone());
            state.map.insert(
                key,
                CacheEntry {
                    result: result.clone(),
                    referenced: false,
                    backing,
                },
            );
        }
        result
    }

    /// Cached version of [`Scheduler::schedule_workload`].
    ///
    /// # Errors
    ///
    /// Fails if any layer has no valid mapping.
    pub fn schedule_workload(
        &self,
        arch: &ArchDescription,
        layers: &[LayerShape],
    ) -> Result<WorkloadEval, ScheduleError> {
        let mut out = Vec::with_capacity(layers.len());
        let mut total_latency = 0.0;
        let mut total_energy = 0.0;
        for layer in layers {
            let s = self.schedule(arch, layer)?;
            total_latency += s.evaluation.latency_cycles;
            total_energy += s.evaluation.energy_pj;
            out.push(s);
        }
        Ok(WorkloadEval {
            layers: out,
            total_latency_cycles: total_latency,
            total_energy_pj: total_energy,
        })
    }

    /// Number of distinct `(arch, layer)` pairs cached.
    pub fn cache_len(&self) -> usize {
        self.state.lock().expect("cache lock").map.len()
    }

    /// Hit/miss/eviction counters and cache size since construction.
    ///
    /// Counters use relaxed atomics: exact under any serial flow, and a
    /// consistent-enough summary under concurrent lookups.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache_len(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Counters for the persistent layer, or `None` for in-memory caches.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.as_ref().map(|log| PersistStats {
            loaded: log.loaded_entries(),
            recovered: log.recovered_lines(),
            appends: log.appends(),
            hits: self.persistent_hits.load(Ordering::Relaxed),
            warm_hits: self.persistent_warm_hits.load(Ordering::Relaxed),
            flush_on_evict: self.flush_on_evict.load(Ordering::Relaxed),
        })
    }

    /// Forces every buffered log record to disk (write + fsync). A no-op
    /// for in-memory caches. Call at the end of a run; the log's `Drop`
    /// also flushes, so this exists for explicit error handling.
    ///
    /// # Errors
    ///
    /// Returns the first shard's I/O error; remaining shards still flush.
    pub fn flush_persistent(&self) -> io::Result<()> {
        match &self.persist {
            Some(log) => log.flush(),
            None => Ok(()),
        }
    }

    /// Publishes a [`CachedScheduler::cache_stats`] snapshot as gauges
    /// `{prefix}.hits`, `{prefix}.misses`, `{prefix}.entries`,
    /// `{prefix}.evictions`, and `{prefix}.hit_rate` on `registry`.
    ///
    /// Intended to be called once at the end of a run (the experiment
    /// harness uses prefix `scheduler`); nothing in the lookup path touches
    /// the registry. Note the counts are *not* thread-count-invariant:
    /// concurrent misses on one key may both run the scheduler, so the
    /// determinism gate excludes `scheduler.`-prefixed metrics.
    pub fn publish_stats(&self, registry: &vaesa_obs::Registry, prefix: &str) {
        let stats = self.cache_stats();
        registry
            .gauge(&format!("{prefix}.hits"))
            .set(stats.hits as f64);
        registry
            .gauge(&format!("{prefix}.misses"))
            .set(stats.misses as f64);
        registry
            .gauge(&format!("{prefix}.entries"))
            .set(stats.entries as f64);
        registry
            .gauge(&format!("{prefix}.evictions"))
            .set(stats.evictions as f64);
        registry
            .gauge(&format!("{prefix}.hit_rate"))
            .set(stats.hit_rate());
        if let Some(p) = self.persist_stats() {
            registry
                .gauge(&format!("{prefix}.persistent.loaded"))
                .set(p.loaded as f64);
            registry
                .gauge(&format!("{prefix}.persistent.recovered"))
                .set(p.recovered as f64);
            registry
                .gauge(&format!("{prefix}.persistent.appends"))
                .set(p.appends as f64);
            registry
                .gauge(&format!("{prefix}.persistent.hits"))
                .set(p.hits as f64);
            registry
                .gauge(&format!("{prefix}.persistent.warm_hits"))
                .set(p.warm_hits as f64);
            registry
                .gauge(&format!("{prefix}.persistent.flush_on_evict"))
                .set(p.flush_on_evict as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaesa_accel::{workloads, DesignSpace};

    fn arch() -> ArchDescription {
        ArchDescription {
            pe_count: 16,
            macs_per_pe: 64,
            accum_buf_bytes: 16 * 1024,
            weight_buf_bytes: 256 * 1024,
            input_buf_bytes: 64 * 1024,
            global_buf_bytes: 256 * 1024,
        }
    }

    fn conv() -> LayerShape {
        LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1)
    }

    #[test]
    fn schedule_beats_unit_mapping_substantially() {
        let s = Scheduler::default();
        let unit = s
            .model()
            .evaluate(&arch(), &conv(), &Mapping::unit())
            .unwrap();
        let sched = s.schedule(&arch(), &conv()).unwrap();
        assert!(
            sched.evaluation.edp() < unit.edp() / 100.0,
            "scheduler only improved EDP from {:.3e} to {:.3e}",
            unit.edp(),
            sched.evaluation.edp()
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let s = Scheduler::default();
        let a = s.schedule(&arch(), &conv()).unwrap();
        let b = s.schedule(&arch(), &conv()).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.evaluation.edp(), b.evaluation.edp());
    }

    #[test]
    fn schedule_exploits_parallel_hardware() {
        let s = Scheduler::default();
        let sched = s.schedule(&arch(), &conv()).unwrap();
        // With 64 output channels and 16 PEs, the scheduler should use
        // substantial spatial parallelism.
        assert!(sched.mapping.spatial_k >= 8, "mapping: {}", sched.mapping);
        assert!(sched.mapping.spatial_c >= 8, "mapping: {}", sched.mapping);
    }

    #[test]
    fn bigger_machine_never_schedules_much_worse() {
        let s = Scheduler::default();
        let small = arch();
        let mut big = arch();
        big.pe_count = 64;
        big.macs_per_pe = 256;
        let es = s.schedule(&small, &conv()).unwrap().evaluation;
        let eb = s.schedule(&big, &conv()).unwrap().evaluation;
        assert!(eb.latency_cycles <= es.latency_cycles * 1.01);
    }

    #[test]
    fn all_training_layers_schedule_on_a_midrange_arch() {
        let s = Scheduler::default();
        for layer in workloads::training_layers() {
            let r = s.schedule(&arch(), &layer);
            assert!(r.is_ok(), "layer {} failed: {:?}", layer.name(), r.err());
        }
    }

    #[test]
    fn tiny_global_buffer_is_invalid_for_big_kernels() {
        let s = Scheduler::default();
        let mut a = arch();
        a.global_buf_bytes = 16; // cannot hold an 11x11 filter footprint
        let alex1 = LayerShape::new("conv1", 11, 11, 55, 55, 3, 64, 4, 4);
        let err = s.schedule(&a, &alex1).unwrap_err();
        assert!(matches!(err, ScheduleError::NoValidMapping { .. }));
        assert!(err.to_string().contains("conv1"));
    }

    #[test]
    fn workload_eval_sums_layers() {
        let s = Scheduler::default();
        let layers = vec![conv(), LayerShape::fully_connected("fc", 512, 256)];
        let w = s.schedule_workload(&arch(), &layers).unwrap();
        assert_eq!(w.layers.len(), 2);
        let lat: f64 = w.layers.iter().map(|l| l.evaluation.latency_cycles).sum();
        let en: f64 = w.layers.iter().map(|l| l.evaluation.energy_pj).sum();
        assert!((w.total_latency_cycles - lat).abs() < 1e-9);
        assert!((w.total_energy_pj - en).abs() < 1e-9);
        assert!((w.edp() - lat * en).abs() < 1e-3 * w.edp());
    }

    #[test]
    fn cached_scheduler_matches_uncached_and_caches() {
        let plain = Scheduler::default();
        let cached = CachedScheduler::default();
        let want = plain.schedule(&arch(), &conv()).unwrap();
        let got1 = cached.schedule(&arch(), &conv()).unwrap();
        let got2 = cached.schedule(&arch(), &conv()).unwrap();
        assert_eq!(want.mapping, got1.mapping);
        assert_eq!(got1.mapping, got2.mapping);
        assert_eq!(cached.cache_len(), 1);
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let cached = CachedScheduler::default();
        assert_eq!(cached.cache_stats().hit_rate(), 0.0);
        let fc = LayerShape::fully_connected("fc", 128, 64);
        cached.schedule(&arch(), &conv()).unwrap(); // miss
        cached.schedule(&arch(), &conv()).unwrap(); // hit
        cached.schedule(&arch(), &fc).unwrap(); // miss
        cached.schedule(&arch(), &conv()).unwrap(); // hit
        let stats = cached.cache_stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 2,
                misses: 2,
                entries: 2,
                evictions: 0
            }
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        let shown = stats.to_string();
        assert!(
            shown.contains("2 hits") && shown.contains("50.0%") && shown.contains("0 evictions"),
            "{shown}"
        );
    }

    /// The published gauges are exactly the [`CacheStats`] counters — the
    /// observability layer must never drift from the scheduler's own
    /// accounting.
    #[test]
    fn published_gauges_equal_cache_stats_counters() {
        let cached = CachedScheduler::default();
        let fc = LayerShape::fully_connected("fc", 128, 64);
        cached.schedule(&arch(), &conv()).unwrap(); // miss
        cached.schedule(&arch(), &conv()).unwrap(); // hit
        cached.schedule(&arch(), &fc).unwrap(); // miss

        let registry = vaesa_obs::Registry::new();
        cached.publish_stats(&registry, "scheduler");
        let stats = cached.cache_stats();
        let gauge = |name: &str| registry.gauge(name).get();
        assert_eq!(gauge("scheduler.hits"), stats.hits as f64);
        assert_eq!(gauge("scheduler.misses"), stats.misses as f64);
        assert_eq!(gauge("scheduler.entries"), stats.entries as f64);
        assert_eq!(gauge("scheduler.evictions"), stats.evictions as f64);
        assert_eq!(gauge("scheduler.hit_rate"), stats.hit_rate());
        assert!(gauge("scheduler.hit_rate") > 0.0);
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let cached = CachedScheduler::with_capacity(Scheduler::default(), 3);
        assert_eq!(cached.cache_capacity(), 3);
        for i in 1..=8 {
            let fc = LayerShape::fully_connected("fc", 64 * i, 64);
            cached.schedule(&arch(), &fc).unwrap();
            assert!(cached.cache_len() <= 3, "cache grew past its bound");
        }
        let stats = cached.cache_stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 5);
    }

    #[test]
    fn second_chance_keeps_rehit_entries_over_cold_ones() {
        let cached = CachedScheduler::with_capacity(Scheduler::default(), 2);
        let hot = LayerShape::fully_connected("hot", 128, 64);
        let cold = LayerShape::fully_connected("cold", 256, 64);
        let new = LayerShape::fully_connected("new", 512, 64);
        cached.schedule(&arch(), &hot).unwrap(); // miss, insert
        cached.schedule(&arch(), &cold).unwrap(); // miss, insert
        cached.schedule(&arch(), &hot).unwrap(); // hit: marks `hot` referenced
                                                 // Inserting a third entry must evict `cold`: `hot` is at the front
                                                 // of the clock queue but referenced, so it gets its second chance.
        cached.schedule(&arch(), &new).unwrap(); // miss, evicts `cold`
        let before = cached.cache_stats();
        cached.schedule(&arch(), &hot).unwrap(); // still cached: a hit
        assert_eq!(cached.cache_stats().hits, before.hits + 1);
        cached.schedule(&arch(), &cold).unwrap(); // evicted: a miss
        assert_eq!(cached.cache_stats().misses, before.misses + 1);
    }

    #[test]
    fn evicted_entries_recompute_identically() {
        let capacity_one = CachedScheduler::with_capacity(Scheduler::default(), 1);
        let a = conv();
        let b = LayerShape::fully_connected("fc", 128, 64);
        let first = capacity_one.schedule(&arch(), &a).unwrap();
        capacity_one.schedule(&arch(), &b).unwrap(); // evicts `a`
        let again = capacity_one.schedule(&arch(), &a).unwrap(); // recompute
        assert_eq!(first.mapping, again.mapping);
        assert_eq!(first.evaluation.edp(), again.evaluation.edp());
        assert_eq!(capacity_one.cache_stats().evictions, 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_cache_is_rejected() {
        let _ = CachedScheduler::with_capacity(Scheduler::default(), 0);
    }

    fn cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vaesa-cosa-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persistent_cache_survives_process_death() {
        let dir = cache_dir("survive");
        {
            let cached = CachedScheduler::with_persistence(Scheduler::default(), 64, &dir).unwrap();
            cached.schedule(&arch(), &conv()).unwrap(); // miss → logged
            cached.schedule(&arch(), &conv()).unwrap(); // hit on a logged entry
            let p = cached.persist_stats().unwrap();
            assert_eq!((p.loaded, p.appends, p.hits, p.warm_hits), (0, 1, 1, 0));
            cached.flush_persistent().unwrap();
        }
        // "A new process": same cache dir, fresh scheduler.
        let cached = CachedScheduler::with_persistence(Scheduler::default(), 64, &dir).unwrap();
        assert_eq!(cached.persist_stats().unwrap().loaded, 1);
        assert_eq!(cached.cache_len(), 1);
        cached.schedule(&arch(), &conv()).unwrap();
        let stats = cached.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 0),
            "a warm entry must serve without re-running the scheduler"
        );
        let p = cached.persist_stats().unwrap();
        assert_eq!((p.hits, p.warm_hits), (1, 1));
        drop(cached);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_eviction_flushes_to_the_log_first() {
        let dir = cache_dir("evictflush");
        let a = conv();
        let b = LayerShape::fully_connected("fc", 128, 64);
        {
            let cached = CachedScheduler::with_persistence(Scheduler::default(), 1, &dir).unwrap();
            cached.schedule(&arch(), &a).unwrap(); // logged, still buffered
            cached.schedule(&arch(), &b).unwrap(); // evicts `a` → flush first
            let p = cached.persist_stats().unwrap();
            assert_eq!(p.flush_on_evict, 1);
            assert_eq!(cached.cache_stats().evictions, 1);
        }
        // `a` reached disk at eviction time, `b` at drop: both load back.
        let cached = CachedScheduler::with_persistence(Scheduler::default(), 8, &dir).unwrap();
        assert_eq!(cached.persist_stats().unwrap().loaded, 2);
        let before = cached.cache_stats().misses;
        cached.schedule(&arch(), &a).unwrap();
        assert_eq!(
            cached.cache_stats().misses,
            before,
            "evicted entry came back warm"
        );
        drop(cached);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_gauges_publish_under_the_prefix() {
        let dir = cache_dir("gauges");
        let cached = CachedScheduler::with_persistence(Scheduler::default(), 64, &dir).unwrap();
        cached.schedule(&arch(), &conv()).unwrap();
        cached.schedule(&arch(), &conv()).unwrap();
        let registry = vaesa_obs::Registry::new();
        cached.publish_stats(&registry, "scheduler");
        let gauge = |name: &str| registry.gauge(name).get();
        assert_eq!(gauge("scheduler.persistent.hits"), 1.0);
        assert_eq!(gauge("scheduler.persistent.appends"), 1.0);
        assert_eq!(gauge("scheduler.persistent.warm_hits"), 0.0);
        assert_eq!(gauge("scheduler.persistent.flush_on_evict"), 0.0);
        drop(cached);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_env_defaults_to_in_memory() {
        // Without VAESA_EVAL_CACHE in this test process, from_env must
        // build a plain cache with no persistence attached.
        if std::env::var("VAESA_EVAL_CACHE").is_err() {
            let cached = CachedScheduler::from_env();
            assert!(cached.persist_stats().is_none());
            assert!(cached.persistence_dir().is_none());
        }
    }

    #[test]
    fn dataflow_search_never_loses_to_weight_stationary() {
        let s = Scheduler::default();
        for layer in [
            conv(),
            LayerShape::fully_connected("fc", 512, 256),
            LayerShape::new("dw", 3, 3, 28, 28, 1, 128, 1, 1),
        ] {
            let ws = s.schedule(&arch(), &layer).unwrap();
            let any = s.schedule_with_dataflows(&arch(), &layer).unwrap();
            assert!(
                any.evaluation.edp() <= ws.evaluation.edp() * (1.0 + 1e-12),
                "dataflow search regressed on {}",
                layer.name()
            );
        }
    }

    #[test]
    fn random_paper_space_points_mostly_schedule() {
        use rand::SeedableRng;
        let space = DesignSpace::paper();
        let s = Scheduler::default();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let layer = conv();
        let mut ok = 0;
        for _ in 0..50 {
            let c = space.random(&mut rng);
            if s.schedule(&space.describe(&c), &layer).is_ok() {
                ok += 1;
            }
        }
        // The vast majority of the paper's space is valid for a midsize conv.
        assert!(ok >= 40, "only {ok}/50 random points were schedulable");
    }

    #[test]
    fn workload_edp_varies_across_design_points() {
        use rand::SeedableRng;
        // The search problem is only meaningful if EDP differs across archs.
        let space = DesignSpace::paper();
        let s = Scheduler::default();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let layers = workloads::alexnet();
        let mut edps = Vec::new();
        for _ in 0..20 {
            let c = space.random(&mut rng);
            if let Ok(w) = s.schedule_workload(&space.describe(&c), &layers) {
                edps.push(w.edp());
            }
        }
        assert!(edps.len() >= 10);
        let min = edps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = edps.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "EDP range too flat: {min:.3e}..{max:.3e}");
    }
}
