//! Iterative mapping search, in the spirit of Timeloop's native mapper.
//!
//! CoSA's headline claim (and the reason the paper uses it) is that a
//! constrained-optimization scheduler finds a good mapping *in one shot*,
//! where Timeloop's mapper randomly samples the mapping space and keeps the
//! best of thousands of candidates. This module provides that iterative
//! baseline: random mapping sampling plus an optional hill-climbing
//! refinement, under an explicit evaluation budget.
//!
//! Used by the `ablation_scheduler` experiment to quantify how much mapping
//! quality the one-shot greedy scheduler actually delivers per evaluation.

use crate::{ScheduleError, Scheduled};
use rand::Rng;
use rand::RngCore;
use vaesa_accel::{ArchDescription, LayerShape};
use vaesa_timeloop::{CostModel, Mapping};

/// Configuration for [`IterativeMapper`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperConfig {
    /// Total cost-model evaluations allowed per `(arch, layer)` pair.
    pub budget: usize,
    /// Fraction of the budget spent on pure random sampling before
    /// hill-climbing starts (numerator of `random_fraction_percent / 100`).
    pub random_fraction_percent: u8,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            budget: 512,
            random_fraction_percent: 50,
        }
    }
}

/// A Timeloop-style iterative mapper: random sampling of the mapping space
/// followed by stochastic hill climbing around the incumbent.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use vaesa_accel::{ArchDescription, LayerShape};
/// use vaesa_cosa::{IterativeMapper, MapperConfig};
///
/// let arch = ArchDescription {
///     pe_count: 16, macs_per_pe: 64,
///     accum_buf_bytes: 8192, weight_buf_bytes: 65536,
///     input_buf_bytes: 32768, global_buf_bytes: 262144,
/// };
/// let layer = LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1);
/// let mapper = IterativeMapper::default();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let found = mapper.search(&arch, &layer, &mut rng)?;
/// assert!(found.evaluation.edp() > 0.0);
/// # Ok::<(), vaesa_cosa::ScheduleError>(())
/// ```
#[derive(Debug, Default)]
pub struct IterativeMapper {
    model: CostModel,
    config: MapperConfig,
}

impl IterativeMapper {
    /// Creates a mapper over the given cost model and budget.
    pub fn new(model: CostModel, config: MapperConfig) -> Self {
        assert!(config.budget >= 1, "mapper budget must be positive");
        assert!(
            config.random_fraction_percent <= 100,
            "random fraction is a percentage"
        );
        IterativeMapper { model, config }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Searches the mapping space for one `(arch, layer)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoValidMapping`] when no sampled mapping
    /// (nor the unit fallback) satisfies the buffer constraints.
    pub fn search(
        &self,
        arch: &ArchDescription,
        layer: &LayerShape,
        rng: &mut dyn RngCore,
    ) -> Result<Scheduled, ScheduleError> {
        let mut best: Option<Scheduled> = None;
        let consider = |mapping: Mapping, best: &mut Option<Scheduled>| {
            if let Ok(evaluation) = self.model.evaluate(arch, layer, &mapping) {
                if best
                    .as_ref()
                    .is_none_or(|b| evaluation.edp() < b.evaluation.edp())
                {
                    *best = Some(Scheduled {
                        mapping,
                        evaluation,
                    });
                }
            }
        };

        // The unit mapping is the always-feasible anchor (when anything is).
        consider(Mapping::unit(), &mut best);

        let mut rng = rng;
        let random_budget = self.config.budget * self.config.random_fraction_percent as usize / 100;
        for _ in 0..random_budget {
            consider(random_mapping(arch, layer, &mut rng), &mut best);
        }

        // Hill climbing: mutate one factor of the incumbent at a time.
        let climb_budget = self.config.budget.saturating_sub(random_budget);
        for _ in 0..climb_budget {
            let Some(incumbent) = best.as_ref() else {
                break;
            };
            let candidate = mutate_mapping(&incumbent.mapping, arch, layer, &mut rng);
            consider(candidate, &mut best);
        }

        best.ok_or_else(|| ScheduleError::NoValidMapping {
            layer: layer.name().to_string(),
        })
    }
}

/// Draws a random mapping with power-of-two factors within the hardware and
/// layer bounds.
pub fn random_mapping(arch: &ArchDescription, layer: &LayerShape, rng: &mut impl Rng) -> Mapping {
    let pow2_upto = |cap: u64, rng: &mut dyn RngCore| -> u64 {
        let max_exp = 63 - cap.max(1).leading_zeros();
        1u64 << (rng.next_u32() % (max_exp + 1))
    };
    Mapping {
        dataflow: vaesa_timeloop::Dataflow::WeightStationary,
        spatial_k: pow2_upto(arch.pe_count.min(layer.k), rng),
        spatial_c: pow2_upto(arch.macs_per_pe.min(layer.c), rng),
        p0: pow2_upto(layer.p, rng),
        q0: pow2_upto(layer.q, rng),
        c0: pow2_upto(layer.c, rng),
        k0: pow2_upto(layer.k, rng),
        p1: pow2_upto(layer.p, rng),
        q1: pow2_upto(layer.q, rng),
        c1: pow2_upto(layer.c, rng),
        k1: pow2_upto(layer.k, rng),
    }
}

/// Doubles or halves one randomly chosen factor of `mapping`, staying
/// within bounds.
fn mutate_mapping(
    mapping: &Mapping,
    arch: &ArchDescription,
    layer: &LayerShape,
    rng: &mut impl Rng,
) -> Mapping {
    let mut m = *mapping;
    let which = rng.gen_range(0..10u8);
    let up = rng.gen_bool(0.5);
    let (value, cap): (&mut u64, u64) = match which {
        0 => (&mut m.spatial_k, arch.pe_count.min(layer.k)),
        1 => (&mut m.spatial_c, arch.macs_per_pe.min(layer.c)),
        2 => (&mut m.p0, layer.p),
        3 => (&mut m.q0, layer.q),
        4 => (&mut m.c0, layer.c),
        5 => (&mut m.k0, layer.k),
        6 => (&mut m.p1, layer.p),
        7 => (&mut m.q1, layer.q),
        8 => (&mut m.c1, layer.c),
        _ => (&mut m.k1, layer.k),
    };
    if up {
        *value = (*value * 2).min(cap.max(1));
    } else {
        *value = (*value / 2).max(1);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn arch() -> ArchDescription {
        ArchDescription {
            pe_count: 16,
            macs_per_pe: 64,
            accum_buf_bytes: 16 * 1024,
            weight_buf_bytes: 256 * 1024,
            input_buf_bytes: 64 * 1024,
            global_buf_bytes: 256 * 1024,
        }
    }

    fn conv() -> LayerShape {
        LayerShape::new("conv", 3, 3, 28, 28, 64, 64, 1, 1)
    }

    #[test]
    fn finds_a_valid_mapping_far_better_than_unit() {
        let mapper = IterativeMapper::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let found = mapper.search(&arch(), &conv(), &mut rng).unwrap();
        let unit = mapper
            .model()
            .evaluate(&arch(), &conv(), &Mapping::unit())
            .unwrap();
        assert!(found.evaluation.edp() < unit.edp() / 10.0);
    }

    #[test]
    fn one_shot_scheduler_matches_or_beats_a_512_eval_mapper() {
        // The CoSA thesis: one-shot optimization rivals budget-limited
        // iterative search. Our greedy scheduler uses <~400 evaluations
        // internally; give the mapper 512 and compare.
        let scheduler = Scheduler::default();
        let mapper = IterativeMapper::default();
        let mut wins = 0;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for trial in 0..5 {
            let mut a = arch();
            a.macs_per_pe = 64 << trial.min(3); // vary the machine a little
            let greedy = scheduler.schedule(&a, &conv()).unwrap();
            let iterative = mapper.search(&a, &conv(), &mut rng).unwrap();
            if greedy.evaluation.edp() <= iterative.evaluation.edp() * 1.05 {
                wins += 1;
            }
        }
        assert!(
            wins >= 4,
            "one-shot matched the mapper only {wins}/5 trials"
        );
    }

    #[test]
    fn more_budget_never_hurts() {
        let small = IterativeMapper::new(
            CostModel::default(),
            MapperConfig {
                budget: 16,
                random_fraction_percent: 50,
            },
        );
        let large = IterativeMapper::new(
            CostModel::default(),
            MapperConfig {
                budget: 1024,
                random_fraction_percent: 50,
            },
        );
        // Identical RNG stream prefix isn't guaranteed, so compare across
        // seeds statistically.
        let mut large_wins = 0;
        for seed in 0..5 {
            let s = small
                .search(&arch(), &conv(), &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
            let l = large
                .search(&arch(), &conv(), &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
            if l.evaluation.edp() <= s.evaluation.edp() {
                large_wins += 1;
            }
        }
        assert!(large_wins >= 4, "bigger budget won only {large_wins}/5");
    }

    #[test]
    fn impossible_arch_is_rejected() {
        let mut tiny = arch();
        tiny.global_buf_bytes = 4;
        let alex1 = LayerShape::new("conv1", 11, 11, 55, 55, 3, 64, 4, 4);
        let mapper = IterativeMapper::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(mapper.search(&tiny, &alex1, &mut rng).is_err());
    }

    #[test]
    fn random_mappings_are_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let m = random_mapping(&arch(), &conv(), &mut rng);
            assert!(m.spatial_k <= 16);
            assert!(m.spatial_c <= 64);
            assert!(m.p0 <= 28 && m.q0 <= 28);
            assert!(m.c0 <= 64 && m.k0 <= 64);
        }
    }
}
