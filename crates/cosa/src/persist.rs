//! Persistent evaluation cache: a sharded append-only log of scheduling
//! results keyed by `(arch, layer)`.
//!
//! [`CachedScheduler`](crate::CachedScheduler)'s memo table historically
//! died with the process; this module gives it a disk-backed second level so
//! every past run (batch figure pipelines and the `vaesa-serve` daemon
//! alike) becomes warm cache for every future one.
//!
//! # Wire format
//!
//! The log is a directory of `shard-NN.jsonl` files. Each line is one
//! self-contained JSON record:
//!
//! ```text
//! {"arch":{...6 u64 fields...},"layer":{...LayerShape...},
//!  "ok":{"mapping":{...},"evaluation":{...}}}        — a scheduled result
//! {"arch":{...},"layer":{...},"err":"<layer name>"}   — a NoValidMapping
//! ```
//!
//! Floats round-trip exactly (the serde_json shim renders shortest-exact
//! forms), so a replayed evaluation is bit-identical to a recomputed one —
//! warm runs produce byte-identical artifacts.
//!
//! # Crash consistency
//!
//! Appends are buffered per shard and flushed (write + `sync_data`) every
//! [`EvalCacheLog::FLUSH_EVERY`] records, on [`EvalCacheLog::flush`], and on
//! drop. A crash can lose at most the unflushed tail of each shard, and can
//! leave a torn final line; [`EvalCacheLog::open`] drops any line that does
//! not parse and rewrites the shard compacted, so a damaged log heals on the
//! next load instead of poisoning it. Duplicate keys (two processes racing
//! the same miss) are legal in the log; the last record wins and compaction
//! removes the rest.
//!
//! Records are assigned to shards by an FNV-1a hash of the canonical key
//! serialization, so concurrent worker threads contend only on their own
//! shard's mutex, never on one global file.

use crate::{CacheKey, ScheduleError, Scheduled};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vaesa_accel::{ArchDescription, LayerShape};

/// One log line: the cache key plus either the scheduled result or the
/// scheduler's error. Exactly one of `ok`/`err` is present.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LogRecord {
    arch: ArchDescription,
    layer: LayerShape,
    #[serde(default)]
    ok: Option<Scheduled>,
    #[serde(default)]
    err: Option<String>,
}

impl LogRecord {
    fn new(key: &CacheKey, result: &Result<Scheduled, ScheduleError>) -> Self {
        let (ok, err) = match result {
            Ok(s) => (Some(*s), None),
            Err(ScheduleError::NoValidMapping { layer }) => (None, Some(layer.clone())),
        };
        LogRecord {
            arch: key.0,
            layer: key.1.clone(),
            ok,
            err,
        }
    }

    fn into_entry(self) -> Option<(CacheKey, Result<Scheduled, ScheduleError>)> {
        let key = (self.arch, self.layer);
        match (self.ok, self.err) {
            (Some(s), None) => Some((key, Ok(s))),
            (None, Some(layer)) => Some((key, Err(ScheduleError::NoValidMapping { layer }))),
            _ => None,
        }
    }
}

/// The canonical identity of a key inside the log: its serialized
/// `{"arch":...,"layer":...}` form. Field order is declaration order under
/// the serde shim, so the string is stable across processes.
fn key_string(key: &CacheKey) -> String {
    // Owned fields: the serde shim's derive does not support generics, and
    // the clone is one `ArchDescription` copy plus one layer-name string.
    #[derive(Serialize)]
    struct KeyRecord {
        arch: ArchDescription,
        layer: LayerShape,
    }
    serde_json::to_string(&KeyRecord {
        arch: key.0,
        layer: key.1.clone(),
    })
    .expect("key serialization is infallible")
}

/// FNV-1a over the canonical key string: stable across runs and platforms
/// (unlike `DefaultHasher`, whose algorithm is unspecified).
fn shard_of(key_json: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key_json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % EvalCacheLog::SHARDS as u64) as usize
}

/// Mutable per-shard state: records serialized but not yet on disk.
#[derive(Debug, Default)]
struct Shard {
    pending: Vec<String>,
    pending_keys: HashSet<String>,
}

/// A sharded append-only log of `(arch, layer) → scheduling result`
/// records under one directory. See the module docs for format and
/// durability semantics.
#[derive(Debug)]
pub struct EvalCacheLog {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    loaded: u64,
    recovered: u64,
    appends: AtomicU64,
}

impl EvalCacheLog {
    /// Number of shard files (and independent append locks).
    pub const SHARDS: usize = 8;

    /// Appends per shard between fsync-batched flushes.
    pub const FLUSH_EVERY: usize = 32;

    fn shard_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard:02}.jsonl"))
    }

    /// Opens (creating if needed) the log at `dir` and returns it together
    /// with every stored entry, in load order (shard files in name order,
    /// lines in file order, duplicate keys last-wins).
    ///
    /// Torn or malformed lines are dropped and counted
    /// ([`EvalCacheLog::recovered_lines`]); if any line was dropped, any key
    /// was duplicated, or any record sat in the wrong shard file, the shard
    /// files are rewritten compacted so a second open is byte-stable.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors (unreadable directory, failed compaction
    /// rewrite); damaged *content* never fails the open.
    #[allow(clippy::type_complexity)]
    pub fn open(
        dir: impl AsRef<Path>,
    ) -> io::Result<(Self, Vec<(CacheKey, Result<Scheduled, ScheduleError>)>)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut files: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "jsonl")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        files.sort();

        // key string → slot in `order`; last write wins without reordering.
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut order: Vec<(String, LogRecord)> = Vec::new();
        let mut recovered: u64 = 0;
        let mut needs_compact = false;

        for path in &files {
            let text = fs::read_to_string(path)?;
            let file_shard = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n[6..8].parse::<usize>().ok());
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let record = match serde_json::from_str::<LogRecord>(line)
                    .ok()
                    .filter(|r| r.ok.is_some() != r.err.is_some())
                {
                    Some(r) => r,
                    None => {
                        // Torn tail after a crash, or garbage: drop it.
                        recovered += 1;
                        needs_compact = true;
                        continue;
                    }
                };
                let key = key_string(&(record.arch, record.layer.clone()));
                if file_shard != Some(shard_of(&key)) {
                    // Written under a different shard layout; re-home it.
                    needs_compact = true;
                }
                match index.get(&key) {
                    Some(&slot) => {
                        order[slot].1 = record;
                        needs_compact = true;
                    }
                    None => {
                        index.insert(key.clone(), order.len());
                        order.push((key, record));
                    }
                }
            }
        }

        if needs_compact {
            let mut per_shard: Vec<String> = vec![String::new(); Self::SHARDS];
            for (key, record) in &order {
                let line = serde_json::to_string(record)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let buf = &mut per_shard[shard_of(key)];
                buf.push_str(&line);
                buf.push('\n');
            }
            for (shard, contents) in per_shard.iter().enumerate() {
                let path = Self::shard_path(&dir, shard);
                if contents.is_empty() {
                    if path.exists() {
                        fs::remove_file(&path)?;
                    }
                    continue;
                }
                let mut f = File::create(&path)?;
                f.write_all(contents.as_bytes())?;
                f.sync_data()?;
            }
            // Drop files from a different shard layout.
            for path in &files {
                let canonical = (0..Self::SHARDS).any(|s| Self::shard_path(&dir, s) == *path);
                if !canonical && path.exists() {
                    fs::remove_file(path)?;
                }
            }
        }

        let entries: Vec<_> = order
            .into_iter()
            .filter_map(|(_, record)| record.into_entry())
            .collect();
        let log = EvalCacheLog {
            dir,
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            loaded: entries.len() as u64,
            recovered,
            appends: AtomicU64::new(0),
        };
        Ok((log, entries))
    }

    /// The directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries returned by [`EvalCacheLog::open`].
    pub fn loaded_entries(&self) -> u64 {
        self.loaded
    }

    /// Torn/malformed lines dropped at open.
    pub fn recovered_lines(&self) -> u64 {
        self.recovered
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Buffers one record for its shard, flushing the shard when the
    /// fsync batch fills. I/O errors on a batch flush are reported to
    /// stderr and dropped: the cache is an accelerator, not a store of
    /// record, so a full disk must not fail the evaluation itself.
    pub fn append(&self, key: &CacheKey, result: &Result<Scheduled, ScheduleError>) {
        let key_json = key_string(key);
        let line = serde_json::to_string(&LogRecord::new(key, result))
            .expect("log record serialization is infallible");
        let shard = shard_of(&key_json);
        let mut state = self.shards[shard].lock().expect("shard lock");
        state.pending.push(line);
        state.pending_keys.insert(key_json);
        self.appends.fetch_add(1, Ordering::Relaxed);
        if state.pending.len() >= Self::FLUSH_EVERY {
            if let Err(e) = self.flush_shard(shard, &mut state) {
                eprintln!("vaesa-cosa: eval cache flush failed on shard {shard}: {e}");
            }
        }
    }

    /// True if `key` has a buffered record not yet on disk (dirty).
    pub fn is_pending(&self, key: &CacheKey) -> bool {
        let key_json = key_string(key);
        let shard = shard_of(&key_json);
        let state = self.shards[shard].lock().expect("shard lock");
        state.pending_keys.contains(&key_json)
    }

    /// If `key` is dirty, flushes its shard to disk first and returns
    /// `true`. Called by the cache on second-chance eviction so a
    /// not-yet-persisted result is never silently discarded.
    pub fn flush_key(&self, key: &CacheKey) -> bool {
        let key_json = key_string(key);
        let shard = shard_of(&key_json);
        let mut state = self.shards[shard].lock().expect("shard lock");
        if !state.pending_keys.contains(&key_json) {
            return false;
        }
        if let Err(e) = self.flush_shard(shard, &mut state) {
            eprintln!("vaesa-cosa: eval cache evict-flush failed on shard {shard}: {e}");
            return false;
        }
        true
    }

    /// Flushes every shard's buffered records to disk (write + fsync).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error; remaining shards are still attempted.
    pub fn flush(&self) -> io::Result<()> {
        let mut first_err = None;
        for shard in 0..Self::SHARDS {
            let mut state = self.shards[shard].lock().expect("shard lock");
            if let Err(e) = self.flush_shard(shard, &mut state) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn flush_shard(&self, shard: usize, state: &mut Shard) -> io::Result<()> {
        if state.pending.is_empty() {
            return Ok(());
        }
        let mut contents = String::new();
        for line in &state.pending {
            contents.push_str(line);
            contents.push('\n');
        }
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::shard_path(&self.dir, shard))?;
        f.write_all(contents.as_bytes())?;
        f.sync_data()?;
        state.pending.clear();
        state.pending_keys.clear();
        Ok(())
    }
}

impl Drop for EvalCacheLog {
    fn drop(&mut self) {
        if let Err(e) = self.flush() {
            eprintln!("vaesa-cosa: eval cache final flush failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vaesa-evalcache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn arch(pe: u64) -> ArchDescription {
        ArchDescription {
            pe_count: pe,
            macs_per_pe: 64,
            accum_buf_bytes: 16 * 1024,
            weight_buf_bytes: 256 * 1024,
            input_buf_bytes: 64 * 1024,
            global_buf_bytes: 256 * 1024,
        }
    }

    fn entry(pe: u64) -> (CacheKey, Result<Scheduled, ScheduleError>) {
        let layer = LayerShape::fully_connected("fc", 128, 64);
        let key = (arch(pe), layer.clone());
        let result = Scheduler::default().schedule(&key.0, &layer);
        (key, result)
    }

    fn dir_bytes(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let bytes = fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect()
    }

    #[test]
    fn round_trips_ok_and_err_entries() {
        let dir = tmp_dir("roundtrip");
        {
            let (log, initial) = EvalCacheLog::open(&dir).unwrap();
            assert!(initial.is_empty());
            let (k1, r1) = entry(16);
            log.append(&k1, &r1);
            // An error result persists too: invalid design points stay
            // invalid without re-running the scheduler.
            let bad = (
                arch(2),
                LayerShape::new("conv1", 11, 11, 55, 55, 3, 64, 4, 4),
            );
            let err = Err(ScheduleError::NoValidMapping {
                layer: "conv1".to_string(),
            });
            log.append(&bad, &err);
            log.flush().unwrap();
            // Round-trip must be value-exact: f64 via shortest-exact JSON.
            let (_, entries) = EvalCacheLog::open(&dir).unwrap();
            assert_eq!(entries.len(), 2);
            let stored: HashMap<_, _> = entries.into_iter().collect();
            assert_eq!(stored.get(&k1), Some(&r1));
            assert_eq!(stored.get(&bad), Some(&err));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_flushes_pending_records() {
        let dir = tmp_dir("dropflush");
        {
            let (log, _) = EvalCacheLog::open(&dir).unwrap();
            let (k, r) = entry(32);
            log.append(&k, &r);
            assert!(log.is_pending(&k));
        } // drop flushes
        let (log, entries) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(log.loaded_entries(), 1);
        assert_eq!(log.recovered_lines(), 0);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_recovered_and_healed() {
        let dir = tmp_dir("torntail");
        let (k, r) = entry(16);
        let shard;
        {
            let (log, _) = EvalCacheLog::open(&dir).unwrap();
            log.append(&k, &r);
            log.flush().unwrap();
            shard = shard_of(&key_string(&k));
        }
        // Simulate a crash mid-append: a torn, non-JSON tail line.
        let path = EvalCacheLog::shard_path(&dir, shard);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"arch\":{\"pe_count\":9999,\"macs").unwrap();
        drop(f);

        let (log, entries) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, k);
        assert_eq!(log.recovered_lines(), 1);
        drop(log);
        // The damaged shard was rewritten: a second open sees clean files.
        let (log2, entries2) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(log2.recovered_lines(), 0);
        assert_eq!(entries2.len(), 1);
        drop(log2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_dedups_and_is_idempotent() {
        let dir = tmp_dir("compact");
        let (k, r) = entry(16);
        {
            let (log, _) = EvalCacheLog::open(&dir).unwrap();
            // Duplicate appends (two processes racing one miss) are legal.
            log.append(&k, &r);
            log.append(&k, &r);
            log.append(&entry(32).0, &entry(32).1);
            log.flush().unwrap();
        }
        // First open compacts (duplicate key): last record wins, one copy.
        let (_, entries) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        let after_first = dir_bytes(&dir);
        let line_count: usize = after_first
            .iter()
            .map(|(_, b)| b.iter().filter(|&&c| c == b'\n').count())
            .sum();
        assert_eq!(line_count, 2, "compaction must drop the duplicate line");
        // Second open finds nothing to do: bytes are identical.
        let (log2, entries2) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(entries2.len(), 2);
        assert_eq!(log2.recovered_lines(), 0);
        drop(log2);
        assert_eq!(
            dir_bytes(&dir),
            after_first,
            "compaction must be idempotent"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_land_in_their_shards() {
        let dir = tmp_dir("concurrent");
        let (log, _) = EvalCacheLog::open(&dir).unwrap();
        let log = Arc::new(log);
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..10u64 {
                        let (k, r) = entry(2 + t * 100 + i);
                        log.append(&k, &r);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.appends(), 80);
        log.flush().unwrap();
        drop(log);
        let (log, entries) = EvalCacheLog::open(&dir).unwrap();
        assert_eq!(entries.len(), 80);
        assert_eq!(log.recovered_lines(), 0);
        // Every record sits in the shard its key hashes to (open would
        // have flagged and rewritten otherwise — so a clean reopen proves
        // placement).
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_key_reports_dirtiness() {
        let dir = tmp_dir("flushkey");
        let (log, _) = EvalCacheLog::open(&dir).unwrap();
        let (k, r) = entry(16);
        assert!(!log.flush_key(&k), "unknown keys are not dirty");
        log.append(&k, &r);
        assert!(log.is_pending(&k));
        assert!(log.flush_key(&k), "buffered keys flush on demand");
        assert!(!log.is_pending(&k));
        assert!(!log.flush_key(&k), "flushed keys are clean");
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }
}
