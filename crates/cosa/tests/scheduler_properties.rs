//! Property tests for the one-shot scheduler across random design points
//! and layer shapes.

use proptest::prelude::*;
use vaesa_accel::{DesignSpace, LayerShape};
use vaesa_cosa::{CachedScheduler, Scheduler};
use vaesa_timeloop::Mapping;

fn arb_indices() -> impl Strategy<Value = [usize; 6]> {
    (
        0usize..5,
        0usize..64,
        0usize..128,
        0usize..32768,
        0usize..2048,
        0usize..131072,
    )
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f])
}

fn arb_layer() -> impl Strategy<Value = LayerShape> {
    (
        1u64..=5,
        1u64..=5,
        1u64..=32,
        1u64..=32,
        1u64..=256,
        1u64..=256,
    )
        .prop_map(|(r, s, p, q, c, k)| LayerShape::new("prop", r, s, p, q, c, k, 1, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scheduler is a pure function of its inputs.
    #[test]
    fn schedule_is_deterministic(indices in arb_indices(), layer in arb_layer()) {
        let space = DesignSpace::paper();
        let arch = space.describe(&space.config_from_indices(indices).expect("bounds"));
        let s = Scheduler::default();
        let a = s.schedule(&arch, &layer);
        let b = s.schedule(&arch, &layer);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.mapping, y.mapping);
                prop_assert_eq!(x.evaluation.edp(), y.evaluation.edp());
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "validity flip-flopped"),
        }
    }

    /// The cache is transparent: cached and uncached agree, including on
    /// errors.
    #[test]
    fn cache_is_transparent(indices in arb_indices(), layer in arb_layer()) {
        let space = DesignSpace::paper();
        let arch = space.describe(&space.config_from_indices(indices).expect("bounds"));
        let plain = Scheduler::default();
        let cached = CachedScheduler::default();
        let a = plain.schedule(&arch, &layer);
        let b = cached.schedule(&arch, &layer);
        let c = cached.schedule(&arch, &layer); // hit
        prop_assert_eq!(a.is_ok(), b.is_ok());
        prop_assert_eq!(b.is_ok(), c.is_ok());
        if let (Ok(x), Ok(y), Ok(z)) = (a, b, c) {
            prop_assert_eq!(x.mapping, y.mapping);
            prop_assert_eq!(y.mapping, z.mapping);
        }
        prop_assert_eq!(cached.cache_len(), 1);
    }

    /// Spatial utilization never exceeds what the layer itself can supply:
    /// no point spreading 3 input channels over 64 lanes.
    #[test]
    fn spatial_factors_bounded_by_problem(indices in arb_indices(), layer in arb_layer()) {
        let space = DesignSpace::paper();
        let arch = space.describe(&space.config_from_indices(indices).expect("bounds"));
        if let Ok(s) = Scheduler::default().schedule(&arch, &layer) {
            prop_assert!(s.mapping.spatial_c <= layer.c.max(1));
            prop_assert!(s.mapping.spatial_k <= layer.k.max(1));
        }
    }

    /// EDP of the scheduled mapping is never above the unit mapping's and
    /// the workload aggregation is consistent with per-layer sums.
    #[test]
    fn workload_totals_are_consistent(indices in arb_indices()) {
        let space = DesignSpace::paper();
        let arch = space.describe(&space.config_from_indices(indices).expect("bounds"));
        let s = Scheduler::default();
        let layers = [
            LayerShape::new("a", 3, 3, 8, 8, 16, 16, 1, 1),
            LayerShape::fully_connected("b", 128, 64),
        ];
        if let Ok(w) = s.schedule_workload(&arch, &layers) {
            let lat: f64 = w.layers.iter().map(|l| l.evaluation.latency_cycles).sum();
            let en: f64 = w.layers.iter().map(|l| l.evaluation.energy_pj).sum();
            prop_assert!((w.total_latency_cycles - lat).abs() <= 1e-9 * lat);
            prop_assert!((w.total_energy_pj - en).abs() <= 1e-9 * en);
            for l in &w.layers {
                let unit = s.model().evaluate(&arch, &layers[0], &Mapping::unit());
                if let Ok(u) = unit {
                    // Any scheduled layer beats (or ties) a unit mapping of
                    // the matching layer; compare only the first for which
                    // we computed the unit cost.
                    if std::ptr::eq(l, &w.layers[0]) {
                        prop_assert!(l.evaluation.edp() <= u.edp() * (1.0 + 1e-12));
                    }
                }
            }
        }
    }
}
