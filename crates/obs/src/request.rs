//! Request-scoped tracing: deterministic request ids, per-request span
//! trees, and a bounded ring of recently finished requests.
//!
//! The aggregate span stats in [`Registry`](crate::Registry) answer "how
//! long does `serve/predict` take on average" but cannot attribute one
//! latency outlier, cache hit, or coalesced batch to the request that
//! caused it. A [`RequestCtx`] carries a request id minted by a
//! [`RequestIdGen`] — a seeded counter, **no wall-clock** — through a
//! request's lifetime; every span opened on the context records into the
//! registry's aggregate stats as usual *and* into the request's own tree
//! under the prefixed path `req/<id>/<span path>`. Finished requests land
//! in a [`RequestTracker`] ring (oldest evicted first) from which a server
//! can export a span tree by id.

use crate::Registry;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Display;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Mints deterministic request ids: `r<seed hex>-<n>` where `n` is a
/// process-local counter. Two daemons booted with the same seed produce
/// the same id sequence — no wall-clock, no randomness.
#[derive(Debug)]
pub struct RequestIdGen {
    seed: u64,
    next: AtomicU64,
}

impl RequestIdGen {
    /// A generator whose ids embed `seed`.
    pub fn new(seed: u64) -> Self {
        RequestIdGen {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The next id in the sequence.
    pub fn next_id(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        format!("r{:x}-{n}", self.seed)
    }
}

/// One completed span inside a request's tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpanNode {
    /// Request-prefixed path: `req/<id>/<span path>`.
    pub path: String,
    /// Offset from the request's start, nanoseconds (monotonic clock).
    pub begin_ns: u64,
    /// Span duration, nanoseconds.
    pub wall_ns: u64,
}

/// A finished request: identity, outcome, span tree, and annotations.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request id.
    pub id: String,
    /// Endpoint label (`predict`, `decode`, ...).
    pub endpoint: String,
    /// HTTP status code of the response.
    pub status: u16,
    /// End-to-end request duration, nanoseconds.
    pub wall_ns: u64,
    /// Completed spans, in completion order (children before parents).
    pub spans: Vec<RequestSpanNode>,
    /// Free-form annotations (batch membership, cache hits, ...).
    pub notes: BTreeMap<String, String>,
}

/// The in-flight observability context for one request.
///
/// Spans opened through [`RequestCtx::span`] record twice on drop: into
/// the registry's aggregate [`SpanStats`](crate::SpanStats) under the raw
/// path (so fleet-wide dashboards keep working), and into this request's
/// tree under `req/<id>/<path>`.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    registry: &'a Registry,
    id: String,
    endpoint: Mutex<String>,
    start: Instant,
    spans: Mutex<Vec<RequestSpanNode>>,
    notes: Mutex<BTreeMap<String, String>>,
}

impl<'a> RequestCtx<'a> {
    /// Opens a context with an id from `gen`, recording into `registry`.
    pub fn new(registry: &'a Registry, id: String) -> Self {
        RequestCtx {
            registry,
            id,
            endpoint: Mutex::new("other".to_string()),
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
            notes: Mutex::new(BTreeMap::new()),
        }
    }

    /// This request's id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Labels the request with its resolved endpoint.
    pub fn set_endpoint(&self, endpoint: &str) {
        *self.endpoint.lock().expect("request ctx lock") = endpoint.to_string();
    }

    /// The registry this context records into.
    pub fn registry(&self) -> &'a Registry {
        self.registry
    }

    /// Opens a request-scoped span under `path` (e.g. `serve/predict`).
    ///
    /// Unlike [`Span`](crate::Span), request spans do **not** sample
    /// process CPU time: [`process_cpu_ns`](crate::process_cpu_ns) costs
    /// a `/proc` read per call (microseconds) and its scheduler-tick
    /// granularity (10 ms) reports 0 at request timescales anyway, so
    /// the aggregate stats record `cpu_ns = 0` for these paths.
    pub fn span(&self, path: &str) -> RequestSpan<'_, 'a> {
        RequestSpan {
            ctx: self,
            path: path.to_string(),
            start: Instant::now(),
        }
    }

    /// Annotates the request (e.g. `batch.id`, `cache.hits`).
    pub fn note(&self, key: &str, value: impl Display) {
        self.notes
            .lock()
            .expect("request ctx lock")
            .insert(key.to_string(), value.to_string());
    }

    /// Closes the request with its response `status`, producing the record
    /// to publish into a [`RequestTracker`].
    pub fn finish(self, status: u16) -> RequestRecord {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self.spans.into_inner().expect("request ctx lock");
        // Cap the tree root: one node covering the whole request.
        spans.push(RequestSpanNode {
            path: format!("req/{}", self.id),
            begin_ns: 0,
            wall_ns,
        });
        RequestRecord {
            id: self.id,
            endpoint: self.endpoint.into_inner().expect("request ctx lock"),
            status,
            wall_ns,
            spans,
            notes: self.notes.into_inner().expect("request ctx lock"),
        }
    }
}

/// An open request-scoped span; records on drop (like
/// [`Span`](crate::Span), which it wraps conceptually).
#[derive(Debug)]
pub struct RequestSpan<'c, 'a> {
    ctx: &'c RequestCtx<'a>,
    path: String,
    start: Instant,
}

impl RequestSpan<'_, '_> {
    /// Opens a nested span under `parent_path/name`.
    pub fn child(&self, name: &str) -> RequestSpan<'_, '_> {
        self.ctx.span(&format!("{}/{name}", self.path))
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for RequestSpan<'_, '_> {
    fn drop(&mut self) {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Aggregate stats under the raw path, exactly like Registry::span
        // but with no CPU sample (see `RequestCtx::span` on why).
        self.ctx.registry.record_span(&self.path, wall_ns, 0);
        let begin = self.start.saturating_duration_since(self.ctx.start);
        self.ctx
            .spans
            .lock()
            .expect("request ctx lock")
            .push(RequestSpanNode {
                path: format!("req/{}/{}", self.ctx.id, self.path),
                begin_ns: u64::try_from(begin.as_nanos()).unwrap_or(u64::MAX),
                wall_ns,
            });
    }
}

/// A bounded ring of recently finished requests, retrievable by id.
/// Memory is capped at `capacity` records; the oldest is evicted first.
#[derive(Debug)]
pub struct RequestTracker {
    capacity: usize,
    ring: Mutex<VecDeque<RequestRecord>>,
}

impl RequestTracker {
    /// A tracker retaining at most `capacity` finished requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "tracker capacity must be at least 1");
        RequestTracker {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Publishes a finished request, evicting the oldest when full.
    pub fn publish(&self, record: RequestRecord) {
        let mut ring = self.ring.lock().expect("tracker lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The record for request `id`, if still retained.
    pub fn get(&self, id: &str) -> Option<RequestRecord> {
        self.ring
            .lock()
            .expect("tracker lock")
            .iter()
            .rev()
            .find(|r| r.id == id)
            .cloned()
    }

    /// `(id, endpoint, status)` of the most recent `n` requests, newest
    /// first.
    pub fn recent(&self, n: usize) -> Vec<(String, String, u16)> {
        self.ring
            .lock()
            .expect("tracker lock")
            .iter()
            .rev()
            .take(n)
            .map(|r| (r.id.clone(), r.endpoint.clone(), r.status))
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracker lock").len()
    }

    /// True when no request has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention cap this tracker was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_deterministic_and_sequential() {
        let a = RequestIdGen::new(0x2a);
        assert_eq!(a.next_id(), "r2a-0");
        assert_eq!(a.next_id(), "r2a-1");
        let b = RequestIdGen::new(0x2a);
        assert_eq!(b.next_id(), "r2a-0", "same seed replays the sequence");
    }

    #[test]
    fn spans_record_into_both_the_registry_and_the_request_tree() {
        let reg = Registry::new();
        let gen = RequestIdGen::new(7);
        let ctx = RequestCtx::new(&reg, gen.next_id());
        ctx.set_endpoint("predict");
        {
            let outer = ctx.span("serve/predict");
            let _inner = outer.child("batch");
        }
        ctx.note("batch.size", 4);
        let record = ctx.finish(200);

        // Aggregate stats keep the raw, id-free paths.
        assert_eq!(reg.span_stats("serve/predict").unwrap().count, 1);
        assert_eq!(reg.span_stats("serve/predict/batch").unwrap().count, 1);

        // The request tree is id-prefixed; children drop first, root last.
        assert_eq!(record.id, "r7-0");
        assert_eq!(record.endpoint, "predict");
        assert_eq!(record.status, 200);
        let paths: Vec<&str> = record.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "req/r7-0/serve/predict/batch",
                "req/r7-0/serve/predict",
                "req/r7-0"
            ]
        );
        assert!(record.wall_ns >= record.spans[1].wall_ns);
        assert_eq!(
            record.notes.get("batch.size").map(String::as_str),
            Some("4")
        );
    }

    #[test]
    fn tracker_retains_a_bounded_ring_and_finds_by_id() {
        let reg = Registry::new();
        let gen = RequestIdGen::new(1);
        let tracker = RequestTracker::new(2);
        for status in [200u16, 400, 500] {
            let ctx = RequestCtx::new(&reg, gen.next_id());
            tracker.publish(ctx.finish(status));
        }
        assert_eq!(tracker.len(), 2);
        assert!(tracker.get("r1-0").is_none(), "oldest evicted");
        assert_eq!(tracker.get("r1-1").unwrap().status, 400);
        assert_eq!(tracker.get("r1-2").unwrap().status, 500);
        let recent = tracker.recent(8);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].0, "r1-2", "newest first");
        assert_eq!(tracker.capacity(), 2);
        assert!(!tracker.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tracker_rejects_zero_capacity() {
        let _ = RequestTracker::new(0);
    }
}
