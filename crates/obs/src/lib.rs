#![deny(missing_docs)]
//! Zero-dependency structured observability for the VAESA stack.
//!
//! Every crate in the workspace reports state through ad-hoc prints or
//! bespoke counters; this crate replaces that with one small, machine-first
//! vocabulary:
//!
//! - [`Counter`] — monotonically increasing `u64` (relaxed atomic);
//! - [`Gauge`] — last-written `f64` (e.g. a cache hit rate snapshot);
//! - [`Histogram`] — recorded `f64` samples with exact percentiles
//!   (Cholesky timings, solve timings, ...);
//! - [`LatencyHistogram`] / [`SlidingWindow`] — constant-memory bucketed
//!   instruments for live services (see the retention policy below);
//! - [`Series`] — an ordered `f64` trajectory (per-epoch losses,
//!   best-EDP-so-far curves);
//! - spans — hierarchical wall/CPU timing scopes ([`Registry::span`],
//!   [`Span::child`]) aggregated per path;
//! - request-scoped tracing — [`RequestCtx`] span trees keyed by
//!   deterministic request ids, retained in a bounded [`RequestTracker`];
//! - meta / events — run-level key-value context and progress messages;
//! - traces — optional per-event span timelines (off by default; see
//!   [`Registry::enable_tracing`] and the Chrome `trace_event` exporter
//!   [`chrome_trace_string`]/[`write_chrome_trace`]).
//!
//! All of it lives in a [`Registry`] (usually the process-wide
//! [`global()`] one) and serializes to a JSON-lines *run manifest*
//! ([`write_manifest`]): one self-describing record per line, in a fixed
//! record-type order with names sorted lexicographically, so two manifests
//! of the same experiment diff cleanly — only values that genuinely
//! changed produce diff hunks. The CI gates (`xtask metrics-gate`,
//! `xtask determinism`) and the `vaesa-cli obs-report` subcommand are all
//! readers of this format; see `DESIGN.md` §2.10. Live services export the
//! same registry in the Prometheus text format instead
//! ([`prometheus_string`]); see `DESIGN.md` §2.12.
//!
//! # Sample-retention policy
//!
//! Batch experiments and long-lived daemons have opposite memory needs,
//! so the crate draws the line explicitly:
//!
//! - [`Histogram`] retains raw `f64` samples for exact percentiles, but
//!   **caps retention** at [`Histogram::RETAIN_CAP`] samples. Below the
//!   cap every sample is kept and percentiles are exact; above it the
//!   retained set decimates deterministically (every time the cap is hit,
//!   every other retained sample is dropped and the keep stride doubles),
//!   while `count`, `mean`, `min`, and `max` stay exact over the full
//!   history. Memory is therefore bounded regardless of run length.
//! - [`LatencyHistogram`] and [`SlidingWindow`] never retain samples at
//!   all — fixed log-spaced buckets, constant memory, quantiles exact to
//!   bucket resolution (≤ 25% relative). Serve-path call-sites use these.
//!
//! # Examples
//!
//! ```
//! let reg = vaesa_obs::Registry::new();
//! {
//!     let fit = reg.span("gp/fit");
//!     let _chol = fit.child("cholesky");
//!     reg.counter("gp.fits").incr();
//! } // spans record on drop
//! reg.histogram("gp.fit_ns").record(1.25e6);
//! reg.series("dse.best_edp").push(3.2e9);
//! let lines = vaesa_obs::manifest_lines(&reg);
//! assert!(lines.iter().any(|l| l.contains("\"record\":\"span\"")));
//! ```

mod json;
mod live;
mod manifest;
mod prom;
mod request;
mod trace;

pub use live::{LatencyHistogram, LatencySnapshot, SlidingWindow};
pub use manifest::{manifest_lines, manifest_string, write_manifest};
pub use prom::{
    parse_prometheus, prometheus_string, sanitize_metric_name, PromSample, PromSnapshot,
};
pub use request::{
    RequestCtx, RequestIdGen, RequestRecord, RequestSpan, RequestSpanNode, RequestTracker,
};
pub use trace::{chrome_trace_string, write_chrome_trace, TraceEvent, DEFAULT_TRACE_CAPACITY};

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing event count.
///
/// Increments are relaxed atomics: exact under serial flows, and a
/// consistent-enough total under concurrent ones (same contract as the
/// scheduler cache counters).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero, usable in `static` position.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` measurement (stored as atomic bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge starting at `0.0`, usable in `static` position.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Overwrites the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Lowers the gauge to `v` if `v` is smaller than the current value
    /// (running-minimum semantics, e.g. for a best-EDP-so-far gauge).
    /// A NaN argument is ignored.
    pub fn set_min(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let cur = f64::from_bits(current);
            if !cur.is_nan() && cur <= v && cur != 0.0 {
                return;
            }
            // A zero gauge is "unset": the first observation always lands.
            let candidate = if cur == 0.0 || cur.is_nan() || v < cur {
                v
            } else {
                return;
            };
            match self.bits.compare_exchange_weak(
                current,
                candidate.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current gauge value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Raw-sample histogram with bounded retention: percentiles are computed
/// by nearest-rank over the retained samples.
///
/// Intended for coarse-grained measurements (per-factorization timings,
/// per-fit timings). Up to [`Histogram::RETAIN_CAP`] samples every value
/// is retained and percentiles are exact; past the cap, retention
/// decimates deterministically — each time the retained set fills, every
/// other sample (by arrival order) is dropped and the keep stride
/// doubles, so memory stays bounded while the subsample remains uniform
/// over arrival order. `count`, `mean`, `min`, and `max` are always exact
/// over the full history. Live-service hot paths should prefer
/// [`LatencyHistogram`] (constant memory, lock-free record); see the
/// crate-level retention-policy docs.
#[derive(Debug, Default)]
pub struct Histogram {
    state: Mutex<HistState>,
}

#[derive(Debug)]
struct HistState {
    /// Retained subsample, arrival order: indices `i * keep_every`.
    samples: Vec<f64>,
    /// Finite samples ever recorded.
    seen: u64,
    /// Arrival-index stride between retained samples (power of two).
    keep_every: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistState {
    fn default() -> Self {
        HistState {
            samples: Vec::new(),
            seen: 0,
            keep_every: 1,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile, nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl Histogram {
    /// Maximum raw samples retained for percentile computation. Exact
    /// percentiles below this; deterministic decimation above it.
    pub const RETAIN_CAP: usize = 4096;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Non-finite samples are dropped.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut state = self.state.lock().expect("histogram lock");
        let index = state.seen;
        state.seen += 1;
        state.sum += v;
        state.min = state.min.min(v);
        state.max = state.max.max(v);
        if index.is_multiple_of(state.keep_every) {
            state.samples.push(v);
            if state.samples.len() >= Self::RETAIN_CAP {
                // Halve the retained set: keeping even positions keeps
                // exactly the arrival indices divisible by the doubled
                // stride, so the subsample stays uniform and reproducible.
                let mut i = 0;
                state.samples.retain(|_| {
                    let keep = i % 2 == 0;
                    i += 1;
                    keep
                });
                state.keep_every *= 2;
            }
        }
    }

    /// Number of samples ever recorded (exact, even past the retention
    /// cap).
    pub fn count(&self) -> u64 {
        self.state.lock().expect("histogram lock").seen
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank over the retained
    /// samples, or `None` if the histogram is empty. Exact while the
    /// sample count is below [`Histogram::RETAIN_CAP`]; a uniform-subsample
    /// estimate beyond it.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut xs = self.state.lock().expect("histogram lock").samples.clone();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        Some(xs[rank - 1])
    }

    /// Count, mean, extrema, and standard percentiles, or `None` if empty.
    /// Count, mean, min, and max are exact over the full history;
    /// percentiles follow the [`Histogram::percentile`] retention rules.
    pub fn summary(&self) -> Option<HistogramSummary> {
        let (mut xs, seen, sum, min, max) = {
            let state = self.state.lock().expect("histogram lock");
            (
                state.samples.clone(),
                state.seen,
                state.sum,
                state.min,
                state.max,
            )
        };
        if seen == 0 {
            return None;
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let n = xs.len();
        let rank = |q: f64| xs[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Some(HistogramSummary {
            count: seen,
            mean: sum / seen as f64,
            min,
            max,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
        })
    }
}

/// An append-only ordered `f64` trajectory (loss curves, best-so-far
/// curves). Unlike a histogram, order is meaningful and preserved.
#[derive(Debug, Default)]
pub struct Series {
    values: Mutex<Vec<f64>>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends one value.
    pub fn push(&self, v: f64) {
        self.values.lock().expect("series lock").push(v);
    }

    /// Replaces the whole series (used when a run re-records a trajectory:
    /// the manifest keeps the most recent run's curve).
    pub fn set(&self, values: Vec<f64>) {
        *self.values.lock().expect("series lock") = values;
    }

    /// A copy of the recorded values, in order.
    pub fn values(&self) -> Vec<f64> {
        self.values.lock().expect("series lock").clone()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.lock().expect("series lock").len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Aggregated timing statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall-clock time, nanoseconds.
    pub wall_ns_total: u64,
    /// Fastest single span, nanoseconds.
    pub wall_ns_min: u64,
    /// Slowest single span, nanoseconds.
    pub wall_ns_max: u64,
    /// Total process CPU time, nanoseconds (0 where unsupported; Linux
    /// granularity is one scheduler tick, see [`process_cpu_ns`]).
    pub cpu_ns_total: u64,
}

/// The collection point for one run's metrics.
///
/// Cheap to share (`&Registry` everywhere); the process-wide instance is
/// [`global()`]. All interior mutability is `Mutex`/atomic, so a registry
/// is freely usable from the parallel sections of the stack.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    latency: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
    series: Mutex<BTreeMap<String, Arc<Series>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    meta: Mutex<BTreeMap<String, String>>,
    events: Mutex<Vec<String>>,
    /// Origin of trace-event timestamps (set when the registry is built,
    /// so every span begin/end offset is non-negative and monotonic).
    epoch: Instant,
    tracing: AtomicBool,
    trace: Mutex<trace::TraceBuffer>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

macro_rules! get_or_create {
    ($map:expr, $name:expr) => {{
        let mut map = $map.lock().expect("registry lock");
        if let Some(existing) = map.get($name) {
            Arc::clone(existing)
        } else {
            let fresh = Arc::new(Default::default());
            map.insert($name.to_string(), Arc::clone(&fresh));
            fresh
        }
    }};
}

impl Registry {
    /// An empty registry (tracing off, default trace capacity).
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            latency: Mutex::new(BTreeMap::new()),
            series: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            meta: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            tracing: AtomicBool::new(false),
            trace: Mutex::new(trace::TraceBuffer::new(DEFAULT_TRACE_CAPACITY)),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self.histograms, name)
    }

    /// The bucketed [`LatencyHistogram`] named `name`, created on first
    /// use. Constant memory and lock-free recording — the instrument of
    /// choice on serve paths.
    pub fn latency_histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        get_or_create!(self.latency, name)
    }

    /// The series named `name`, created on first use.
    pub fn series(&self, name: &str) -> Arc<Series> {
        get_or_create!(self.series, name)
    }

    /// Sets a run-level metadata key (seed, git revision, thread count,
    /// ...). Rendered in the manifest's leading `run` record.
    pub fn set_meta(&self, key: &str, value: impl Display) {
        self.meta
            .lock()
            .expect("registry lock")
            .insert(key.to_string(), value.to_string());
    }

    /// The metadata value for `key`, if set.
    pub fn meta(&self, key: &str) -> Option<String> {
        self.meta.lock().expect("registry lock").get(key).cloned()
    }

    /// Appends a progress event message (machine copy of what
    /// [`progress!`](crate::progress) printed to stderr).
    pub fn event(&self, message: &str) {
        self.events
            .lock()
            .expect("registry lock")
            .push(message.to_string());
    }

    /// Opens a root timing span; time is recorded under `name` when the
    /// returned guard drops. Nest with [`Span::child`].
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::open(self, name.to_string())
    }

    /// Folds one completed span measurement into the stats for `path`.
    /// Usually called via [`Span`]'s drop, but public so tests and
    /// manifest replays can drive it directly.
    pub fn record_span(&self, path: &str, wall_ns: u64, cpu_ns: u64) {
        let mut spans = self.spans.lock().expect("registry lock");
        let stats = spans.entry(path.to_string()).or_default();
        stats.count += 1;
        stats.wall_ns_total += wall_ns;
        stats.cpu_ns_total += cpu_ns;
        stats.wall_ns_max = stats.wall_ns_max.max(wall_ns);
        stats.wall_ns_min = if stats.count == 1 {
            wall_ns
        } else {
            stats.wall_ns_min.min(wall_ns)
        };
    }

    /// The aggregated stats for one span path, if any span completed there.
    pub fn span_stats(&self, path: &str) -> Option<SpanStats> {
        self.spans.lock().expect("registry lock").get(path).copied()
    }

    /// Turns on per-event span tracing (see the [`trace`](crate::trace)
    /// module docs). When off — the default — spans cost one relaxed
    /// atomic load extra, nothing else.
    pub fn enable_tracing(&self) {
        self.tracing.store(true, Ordering::Relaxed);
    }

    /// Turns on tracing with an explicit ring-buffer capacity (events),
    /// clearing anything previously recorded.
    pub fn enable_tracing_with_capacity(&self, capacity: usize) {
        self.trace
            .lock()
            .expect("registry lock")
            .set_capacity(capacity);
        self.enable_tracing();
    }

    /// Turns tracing back off. Recorded events stay readable.
    pub fn disable_tracing(&self) {
        self.tracing.store(false, Ordering::Relaxed);
    }

    /// Whether per-event span tracing is currently on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Records one trace event directly. Usually driven by [`Span`]'s
    /// drop (when tracing is on), but public so tests and replays can
    /// synthesize traces — mirroring [`Registry::record_span`].
    pub fn record_trace_event(&self, path: &str, tid: u64, begin_ns: u64, dur_ns: u64) {
        self.trace.lock().expect("registry lock").push(TraceEvent {
            path: path.to_string(),
            tid,
            begin_ns,
            dur_ns,
        });
    }

    /// The recorded trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().expect("registry lock").snapshot()
    }

    /// How many trace events were overwritten or discarded because the
    /// ring buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.lock().expect("registry lock").dropped()
    }

    /// Snapshot accessors used by the manifest writer (sorted by name).
    pub(crate) fn snapshot(&self) -> manifest::Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .filter_map(|(k, v)| v.summary().map(|s| (k.clone(), s)))
            .collect();
        let latency = self
            .latency
            .lock()
            .expect("registry lock")
            .iter()
            .filter_map(|(k, v)| v.snapshot().map(|s| (k.clone(), s)))
            .collect();
        let series = self
            .series
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.values()))
            .collect();
        let spans = self.spans.lock().expect("registry lock").clone();
        let meta = self.meta.lock().expect("registry lock").clone();
        let events = self.events.lock().expect("registry lock").clone();
        manifest::Snapshot {
            meta,
            counters,
            gauges,
            histograms,
            latency,
            series,
            spans,
            events,
        }
    }

    /// Clears every metric, span, meta key, and event. Benchmarks and
    /// tests use this to isolate runs sharing the [`global()`] registry.
    pub fn reset(&self) {
        self.counters.lock().expect("registry lock").clear();
        self.gauges.lock().expect("registry lock").clear();
        self.histograms.lock().expect("registry lock").clear();
        self.latency.lock().expect("registry lock").clear();
        self.series.lock().expect("registry lock").clear();
        self.spans.lock().expect("registry lock").clear();
        self.meta.lock().expect("registry lock").clear();
        self.events.lock().expect("registry lock").clear();
        self.trace.lock().expect("registry lock").clear();
    }
}

/// An open timing scope. Wall time comes from [`Instant`]; CPU time is the
/// process total from [`process_cpu_ns`] (best effort). Recorded into its
/// registry under the span's `/`-separated path when dropped.
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    path: String,
    start: Instant,
    cpu_start: Option<u64>,
}

impl<'a> Span<'a> {
    fn open(registry: &'a Registry, path: String) -> Self {
        Span {
            registry,
            path,
            start: Instant::now(),
            cpu_start: process_cpu_ns(),
        }
    }

    /// This span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Opens a nested span recorded under `parent_path/name`. Drop the
    /// child before the parent so the parent's time covers it.
    pub fn child(&self, name: &str) -> Span<'a> {
        Span::open(self.registry, format!("{}/{name}", self.path))
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let wall_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cpu_ns = match (self.cpu_start, process_cpu_ns()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        };
        self.registry.record_span(&self.path, wall_ns, cpu_ns);
        if self.registry.tracing_enabled() {
            let begin = self.start.saturating_duration_since(self.registry.epoch);
            let begin_ns = u64::try_from(begin.as_nanos()).unwrap_or(u64::MAX);
            self.registry
                .record_trace_event(&self.path, trace::thread_index(), begin_ns, wall_ns);
        }
    }
}

/// Total process CPU time (user + system) in nanoseconds, read from
/// `/proc/self/stat`. Granularity is one scheduler tick (assumed 100 Hz,
/// the Linux default — `_SC_CLK_TCK` is unreachable without libc), so
/// short spans legitimately report 0 CPU ns. Returns `None` off Linux.
pub fn process_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; fields 14/15 (utime/stime, in
    // clock ticks) are counted after the closing paren.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    const NS_PER_TICK: u64 = 1_000_000_000 / 100;
    Some((utime + stime) * NS_PER_TICK)
}

/// Best-effort current git revision: reads `.git/HEAD` (searching upward
/// from the working directory) and resolves one level of `ref:`
/// indirection. Returns `None` outside a git checkout.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            return match contents.strip_prefix("ref: ") {
                Some(reference) => {
                    let resolved = std::fs::read_to_string(dir.join(".git").join(reference))
                        .ok()?
                        .trim()
                        .to_string();
                    (!resolved.is_empty()).then_some(resolved)
                }
                None => (!contents.is_empty()).then(|| contents.to_string()),
            };
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Peak resident-set size of this process in bytes, read from the
/// `VmHWM` line of `/proc/self/status` (the kernel's memory high-water
/// mark). Returns `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The process-wide registry every instrumented crate records into.
///
/// Setting `VAESA_TRACE=1` (or `true`) in the environment enables span
/// tracing on this registry from its first use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        let traced = std::env::var("VAESA_TRACE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if traced {
            registry.enable_tracing();
        }
        registry
    })
}

/// [`Registry::counter`] on the [`global()`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// [`Registry::gauge`] on the [`global()`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// [`Registry::histogram`] on the [`global()`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// [`Registry::latency_histogram`] on the [`global()`] registry.
pub fn latency_histogram(name: &str) -> Arc<LatencyHistogram> {
    global().latency_histogram(name)
}

/// [`Registry::series`] on the [`global()`] registry.
pub fn series(name: &str) -> Arc<Series> {
    global().series(name)
}

/// [`Registry::span`] on the [`global()`] registry.
pub fn span(name: &str) -> Span<'static> {
    global().span(name)
}

/// [`Registry::set_meta`] on the [`global()`] registry.
pub fn set_meta(key: &str, value: impl Display) {
    global().set_meta(key, value);
}

/// [`Registry::event`] on the [`global()`] registry.
pub fn event(message: &str) {
    global().event(message);
}

/// A progress line for humans *and* machines: prints to stderr (keeping
/// stdout for results) and appends the same text as a manifest `event`
/// record on the global registry.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {{
        let message = format!($($arg)*);
        eprintln!("{message}");
        $crate::event(&message);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").incr();
        assert_eq!(reg.counter("a").get(), 3);
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn gauges_overwrite_and_track_minimum() {
        let g = Gauge::new();
        g.set(4.5);
        assert_eq!(g.get(), 4.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);

        let m = Gauge::new();
        m.set_min(5.0); // first observation lands even though gauge is 0
        assert_eq!(m.get(), 5.0);
        m.set_min(7.0);
        assert_eq!(m.get(), 5.0);
        m.set_min(2.0);
        assert_eq!(m.get(), 2.0);
        m.set_min(f64::NAN);
        assert_eq!(m.get(), 2.0);
    }

    #[test]
    fn histogram_percentiles_are_nearest_rank() {
        let h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), Some(50.0));
        assert_eq!(h.percentile(0.90), Some(90.0));
        assert_eq!(h.percentile(0.99), Some(99.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(1.0), Some(100.0));
        let s = h.summary().unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn histogram_drops_non_finite_and_handles_small_counts() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.summary(), None);
        assert_eq!(h.percentile(0.5), None);
        h.record(3.0);
        let s = h.summary().unwrap();
        assert_eq!((s.count, s.p50, s.p99), (1, 3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_rejects_out_of_range_quantile() {
        let _ = Histogram::new().percentile(1.5);
    }

    #[test]
    fn histogram_retention_is_bounded_and_stays_accurate() {
        let h = Histogram::new();
        let n = (Histogram::RETAIN_CAP * 4) as u64;
        for v in 1..=n {
            h.record(v as f64);
        }
        // Exact aggregates over the full history, bounded retained set.
        assert_eq!(h.count(), n);
        let s = h.summary().unwrap();
        assert_eq!(s.count, n);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, n as f64);
        assert!((s.mean - (n as f64 + 1.0) / 2.0).abs() < 1e-9);
        assert!(
            h.state.lock().unwrap().samples.len() < Histogram::RETAIN_CAP,
            "retained set must stay under the cap"
        );
        // Percentiles come from a uniform arrival-order subsample of a
        // uniform stream: within a few percent of exact.
        for (q, exact) in [(0.5, 0.5 * n as f64), (0.9, 0.9 * n as f64)] {
            let got = h.percentile(q).unwrap();
            assert!(
                (got - exact).abs() / exact < 0.05,
                "q={q}: {got} vs {exact}"
            );
        }
        // Decimation is deterministic: an identical stream reproduces the
        // identical summary.
        let h2 = Histogram::new();
        for v in 1..=n {
            h2.record(v as f64);
        }
        assert_eq!(h.summary(), h2.summary());
    }

    #[test]
    fn series_preserve_order_and_replace() {
        let reg = Registry::new();
        let s = reg.series("curve");
        s.push(3.0);
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.values(), vec![3.0, 1.0, 2.0]);
        s.set(vec![9.0]);
        assert_eq!(reg.series("curve").values(), vec![9.0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn span_timing_is_monotonic_and_nested_spans_fit_in_parents() {
        let reg = Registry::new();
        {
            let parent = reg.span("outer");
            {
                let _child = parent.child("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let outer = reg.span_stats("outer").unwrap();
        let inner = reg.span_stats("outer/inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Wall clocks are monotonic: a child opened and closed inside its
        // parent can never out-time it, and both must cover their sleeps.
        assert!(inner.wall_ns_total >= 2_000_000, "{inner:?}");
        assert!(outer.wall_ns_total >= inner.wall_ns_total + 1_000_000);
        assert!(outer.wall_ns_min <= outer.wall_ns_max);
    }

    #[test]
    fn span_stats_aggregate_min_max_and_count() {
        let reg = Registry::new();
        reg.record_span("s", 10, 1);
        reg.record_span("s", 30, 2);
        reg.record_span("s", 20, 3);
        let s = reg.span_stats("s").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.wall_ns_total, 60);
        assert_eq!(s.wall_ns_min, 10);
        assert_eq!(s.wall_ns_max, 30);
        assert_eq!(s.cpu_ns_total, 6);
    }

    #[test]
    fn process_cpu_time_is_monotonic_where_supported() {
        let Some(a) = process_cpu_ns() else {
            return; // unsupported platform: nothing to check
        };
        // Burn a little CPU; the reading must never go backwards.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = process_cpu_ns().unwrap();
        assert!(b >= a);
    }

    #[test]
    fn registry_reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("c").incr();
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(1.0);
        reg.series("s").push(1.0);
        reg.record_span("sp", 1, 0);
        reg.set_meta("k", "v");
        reg.event("hello");
        reg.reset();
        assert_eq!(reg.counter("c").get(), 0);
        assert_eq!(reg.gauge("g").get(), 0.0);
        assert_eq!(reg.histogram("h").count(), 0);
        assert!(reg.series("s").is_empty());
        assert_eq!(reg.span_stats("sp"), None);
        assert_eq!(reg.meta("k"), None);
    }

    #[test]
    fn histogram_percentile_edge_cases() {
        // Empty: every quantile is None.
        let h = Histogram::new();
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);

        // Single sample: every quantile is that sample.
        h.record(7.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(7.5), "q={q}");
        }

        // Duplicates: nearest rank lands on the duplicated value, and
        // q=0/q=1 are the extrema.
        let d = Histogram::new();
        for v in [2.0, 2.0, 2.0, 2.0, 9.0] {
            d.record(v);
        }
        assert_eq!(d.percentile(0.0), Some(2.0));
        assert_eq!(d.percentile(0.5), Some(2.0));
        assert_eq!(d.percentile(0.8), Some(2.0));
        assert_eq!(d.percentile(0.81), Some(9.0));
        assert_eq!(d.percentile(1.0), Some(9.0));
        let s = d.summary().unwrap();
        assert_eq!((s.min, s.max, s.p50), (2.0, 9.0, 2.0));
    }

    #[test]
    fn nested_children_aggregate_per_path() {
        let reg = Registry::new();
        {
            let run = reg.span("dse/run");
            for _ in 0..3 {
                let _fit = run.child("fit");
            }
            {
                let fit = run.child("fit");
                let _chol = fit.child("cholesky");
            }
            let _score = run.child("score");
        }
        // Same child name under the same parent folds into one path; a
        // grandchild gets its own three-segment path; sibling paths stay
        // separate; and re-running the parent keeps accumulating.
        assert_eq!(reg.span_stats("dse/run").unwrap().count, 1);
        assert_eq!(reg.span_stats("dse/run/fit").unwrap().count, 4);
        assert_eq!(reg.span_stats("dse/run/fit/cholesky").unwrap().count, 1);
        assert_eq!(reg.span_stats("dse/run/score").unwrap().count, 1);
        assert_eq!(reg.span_stats("dse/run/bogus"), None);
        {
            let run = reg.span("dse/run");
            let _fit = run.child("fit");
        }
        let fit = reg.span_stats("dse/run/fit").unwrap();
        assert_eq!(fit.count, 5);
        assert!(fit.wall_ns_min <= fit.wall_ns_max);
        assert!(fit.wall_ns_total >= fit.wall_ns_max);
    }

    #[test]
    fn tracing_is_off_by_default_and_records_when_enabled() {
        let reg = Registry::new();
        {
            let _s = reg.span("quiet");
        }
        assert!(!reg.tracing_enabled());
        assert!(reg.trace_events().is_empty(), "disabled tracing records");

        reg.enable_tracing();
        {
            let outer = reg.span("outer");
            let _inner = outer.child("inner");
        }
        let events = reg.trace_events();
        assert_eq!(events.len(), 2);
        // Children drop first, so they precede parents in the buffer.
        assert_eq!(events[0].path, "outer/inner");
        assert_eq!(events[1].path, "outer");
        for e in &events {
            assert!(e.tid >= 1);
        }
        // The child window nests inside the parent window on the shared
        // monotonic epoch clock.
        let (inner, outer) = (&events[0], &events[1]);
        assert!(outer.begin_ns <= inner.begin_ns);
        assert!(inner.begin_ns + inner.dur_ns <= outer.begin_ns + outer.dur_ns);

        reg.disable_tracing();
        {
            let _s = reg.span("quiet_again");
        }
        assert_eq!(reg.trace_events().len(), 2);

        reg.reset();
        assert!(reg.trace_events().is_empty());
        assert_eq!(reg.trace_dropped(), 0);
    }

    #[test]
    fn tracing_capacity_override_caps_the_buffer() {
        let reg = Registry::new();
        reg.enable_tracing_with_capacity(2);
        for i in 0..4 {
            let _s = reg.span(if i % 2 == 0 { "even" } else { "odd" });
        }
        assert_eq!(reg.trace_events().len(), 2);
        assert_eq!(reg.trace_dropped(), 2);
        // Aggregate span stats are unaffected by the trace ring.
        assert_eq!(reg.span_stats("even").unwrap().count, 2);
    }

    #[test]
    fn peak_rss_is_positive_where_supported() {
        let Some(rss) = peak_rss_bytes() else {
            return; // unsupported platform: nothing to check
        };
        // Any live process has paged in at least a few KiB.
        assert!(rss > 4096, "{rss}");
    }

    #[test]
    fn meta_round_trips() {
        let reg = Registry::new();
        reg.set_meta("seed", 42u64);
        assert_eq!(reg.meta("seed").as_deref(), Some("42"));
    }

    #[test]
    fn global_registry_is_shared() {
        counter("obs.test.global").add(5);
        assert_eq!(global().counter("obs.test.global").get(), 5);
    }
}
