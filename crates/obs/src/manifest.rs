//! The JSON-lines run-manifest format.
//!
//! One self-describing record per line, in a fixed record-type order with
//! names sorted lexicographically inside each type, so manifests of the
//! same experiment diff cleanly:
//!
//! ```text
//! {"record":"run","meta":{...}}                 — one line of run context
//! {"record":"counter","name":...,"value":...}   — sorted by name
//! {"record":"gauge","name":...,"value":...}
//! {"record":"histogram","name":...,"count":...,"mean":...,"min":...,
//!  "max":...,"p50":...,"p90":...,"p99":...}
//! {"record":"series","name":...,"values":[...]}
//! {"record":"span","path":...,"count":...,"wall_ns_total":...,
//!  "wall_ns_min":...,"wall_ns_max":...,"cpu_ns_total":...}
//! {"record":"event","index":...,"message":...}
//! ```
//!
//! Counters, gauges, and series carry run *content* (deterministic under
//! the workspace's bit-identical-parallelism policy, modulo cache-timing
//! metrics — see `DESIGN.md` §2.10); histograms and spans carry *timings*
//! and naturally vary run to run. Readers that gate on manifests compare
//! the former and ignore the latter.

use crate::json::Obj;
use crate::{HistogramSummary, LatencySnapshot, Registry, SpanStats};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// An ordered copy of a registry's contents, taken under its locks.
#[derive(Debug)]
pub(crate) struct Snapshot {
    pub(crate) meta: BTreeMap<String, String>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, HistogramSummary>,
    pub(crate) latency: BTreeMap<String, LatencySnapshot>,
    pub(crate) series: BTreeMap<String, Vec<f64>>,
    pub(crate) spans: BTreeMap<String, SpanStats>,
    pub(crate) events: Vec<String>,
}

/// Renders `registry` as manifest lines (no trailing newline per line).
pub fn manifest_lines(registry: &Registry) -> Vec<String> {
    let snap = registry.snapshot();
    let mut lines = Vec::new();

    let mut meta = Obj::new();
    for (k, v) in &snap.meta {
        meta.str_field(k, v);
    }
    let mut run = Obj::new();
    run.str_field("record", "run")
        .raw_field("meta", &meta.finish());
    lines.push(run.finish());

    for (name, value) in &snap.counters {
        let mut o = Obj::new();
        o.str_field("record", "counter")
            .str_field("name", name)
            .u64_field("value", *value);
        lines.push(o.finish());
    }
    for (name, value) in &snap.gauges {
        let mut o = Obj::new();
        o.str_field("record", "gauge")
            .str_field("name", name)
            .f64_field("value", *value);
        lines.push(o.finish());
    }
    // Bucketed latency histograms render as ordinary histogram records
    // (nanosecond fields widened to f64), merged name-sorted with the
    // exact-sample histograms so manifest readers see one family.
    let mut histograms = snap.histograms.clone();
    for (name, s) in &snap.latency {
        histograms.insert(
            name.clone(),
            HistogramSummary {
                count: s.count,
                mean: s.sum_ns as f64 / s.count.max(1) as f64,
                min: s.min_ns as f64,
                max: s.max_ns as f64,
                p50: s.p50_ns as f64,
                p90: s.p90_ns as f64,
                p99: s.p99_ns as f64,
            },
        );
    }
    for (name, s) in &histograms {
        let mut o = Obj::new();
        o.str_field("record", "histogram")
            .str_field("name", name)
            .u64_field("count", s.count)
            .f64_field("mean", s.mean)
            .f64_field("min", s.min)
            .f64_field("max", s.max)
            .f64_field("p50", s.p50)
            .f64_field("p90", s.p90)
            .f64_field("p99", s.p99);
        lines.push(o.finish());
    }
    for (name, values) in &snap.series {
        let mut o = Obj::new();
        o.str_field("record", "series")
            .str_field("name", name)
            .f64_array_field("values", values);
        lines.push(o.finish());
    }
    for (path, s) in &snap.spans {
        let mut o = Obj::new();
        o.str_field("record", "span")
            .str_field("path", path)
            .u64_field("count", s.count)
            .u64_field("wall_ns_total", s.wall_ns_total)
            .u64_field("wall_ns_min", s.wall_ns_min)
            .u64_field("wall_ns_max", s.wall_ns_max)
            .u64_field("cpu_ns_total", s.cpu_ns_total);
        lines.push(o.finish());
    }
    for (index, message) in snap.events.iter().enumerate() {
        let mut o = Obj::new();
        o.str_field("record", "event")
            .u64_field("index", index as u64)
            .str_field("message", message);
        lines.push(o.finish());
    }
    lines
}

/// The whole manifest as one newline-terminated string.
pub fn manifest_string(registry: &Registry) -> String {
    let mut out = manifest_lines(registry).join("\n");
    out.push('\n');
    out
}

/// Writes the manifest to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_manifest(registry: &Registry, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, manifest_string(registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> Registry {
        let reg = Registry::new();
        reg.set_meta("seed", 7u64);
        reg.set_meta("bin", "demo");
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("rate").set(0.5);
        reg.histogram("ns").record(10.0);
        reg.histogram("ns").record(30.0);
        reg.series("curve").push(3.0);
        reg.series("curve").push(1.0);
        reg.record_span("fit/cholesky", 100, 10);
        reg.event("hello \"world\"");
        reg
    }

    #[test]
    fn manifest_orders_records_deterministically() {
        let reg = demo_registry();
        let lines = manifest_lines(&reg);
        // run, 2 counters, 1 gauge, 1 histogram, 1 series, 1 span, 1 event
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"record\":\"run\""));
        assert!(lines[0].contains("\"bin\":\"demo\""));
        assert!(lines[0].contains("\"seed\":\"7\""));
        // Counter names sorted: a.count before b.count.
        assert_eq!(
            lines[1],
            "{\"record\":\"counter\",\"name\":\"a.count\",\"value\":1}"
        );
        assert_eq!(
            lines[2],
            "{\"record\":\"counter\",\"name\":\"b.count\",\"value\":2}"
        );
        assert!(lines[3].contains("\"gauge\""));
        assert!(lines[4].contains("\"histogram\"") && lines[4].contains("\"p50\":10"));
        assert!(lines[5].contains("\"series\"") && lines[5].contains("[3,1]"));
        assert!(lines[6].contains("\"span\"") && lines[6].contains("fit/cholesky"));
        assert!(lines[7].contains("\\\"world\\\""));
    }

    #[test]
    fn identical_content_renders_identical_manifests() {
        let a = manifest_string(&demo_registry());
        let b = manifest_string(&demo_registry());
        assert_eq!(a, b);
    }

    #[test]
    fn writer_creates_directories_and_files() {
        let dir = std::env::temp_dir().join(format!("vaesa_obs_test_{}", std::process::id()));
        let path = dir.join("nested/manifest.jsonl");
        write_manifest(&demo_registry(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.ends_with('\n'));
        assert_eq!(content.lines().count(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_registry_still_writes_a_run_record() {
        let reg = Registry::new();
        let lines = manifest_lines(&reg);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], "{\"record\":\"run\",\"meta\":{}}");
    }
}
