//! Prometheus text exposition format: a writer over a registry snapshot
//! and a small parser for the gates and dashboards that scrape it back.
//!
//! The mapping from registry instruments to Prometheus families:
//!
//! | registry instrument        | Prometheus family                          |
//! |----------------------------|--------------------------------------------|
//! | [`Counter`](crate::Counter)| `counter`                                  |
//! | [`Gauge`](crate::Gauge)    | `gauge`                                    |
//! | [`Histogram`](crate::Histogram) (exact-sample) | `summary` (`quantile` labels + `_sum`/`_count`) |
//! | [`LatencyHistogram`](crate::LatencyHistogram)  | `histogram` (cumulative `_bucket{le=...}` + `_sum`/`_count`) |
//!
//! Metric names are sanitized (`serve.predict.rows` → `serve_predict_rows`)
//! and every family is emitted in a fixed section order with names sorted,
//! so two scrapes of the same state are byte-identical.

use crate::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Rewrites a registry metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` by mapping every other byte to `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_'); // digit-first names get a leading underscore
            out.push(c);
        } else if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `registry` in the Prometheus text exposition format (version
/// 0.0.4): counters, gauges, exact-sample histograms as summaries, then
/// bucketed latency histograms, each section name-sorted.
pub fn prometheus_string(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", number(*value));
    }
    for (name, s) in &snap.histograms {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", number(v));
        }
        let _ = writeln!(out, "{n}_sum {}", number(s.mean * s.count as f64));
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    for (name, s) in &snap.latency {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut saw_inf = false;
        for (upper, cum) in &s.buckets {
            match upper {
                Some(le) => {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
                }
                None => {
                    saw_inf = true;
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
                }
            }
        }
        if !saw_inf {
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", s.count);
        }
        let _ = writeln!(out, "{n}_sum {}", s.sum_ns);
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    out
}

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name (includes any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (empty when unlabelled).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape: declared metric types plus every sample line.
#[derive(Debug, Clone, Default)]
pub struct PromSnapshot {
    /// `# TYPE` declarations, name → type, in declaration order of first
    /// appearance (map iteration is name-sorted).
    pub types: BTreeMap<String, String>,
    /// All samples, in source order.
    pub samples: Vec<PromSample>,
}

impl PromSnapshot {
    /// The value of the unlabelled sample `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// All samples whose name is exactly `name`.
    pub fn samples_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a PromSample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The `q`-quantile of metric `base`, resolved from either a
    /// `histogram` family (cumulative `<base>_bucket{le=...}` counts) or a
    /// `summary` family (`<base>{quantile="..."}` samples, matched within
    /// 1e-9). Returns `None` when the family is absent or empty. Like
    /// `histogram_quantile`, a quantile landing in the `+Inf` bucket
    /// resolves to the highest finite bucket bound, keeping the result
    /// comparable against finite SLO thresholds.
    pub fn quantile(&self, base: &str, q: f64) -> Option<f64> {
        let bucket_name = format!("{base}_bucket");
        let mut buckets: Vec<(f64, f64)> = self
            .samples_named(&bucket_name)
            .filter_map(|s| {
                let le = s.label("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        if !buckets.is_empty() {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let total = buckets.last().map(|b| b.1)?;
            if total <= 0.0 {
                return None;
            }
            let rank = (q * total).ceil().clamp(1.0, total);
            let highest_finite = buckets
                .iter()
                .rev()
                .find(|(bound, _)| bound.is_finite())
                .map(|(bound, _)| *bound);
            for (bound, cum) in &buckets {
                if *cum >= rank {
                    return if bound.is_finite() {
                        Some(*bound)
                    } else {
                        highest_finite.or(Some(*bound))
                    };
                }
            }
            return buckets.last().map(|b| b.0);
        }
        self.samples_named(base)
            .find(|s| {
                s.label("quantile")
                    .and_then(|v| v.parse::<f64>().ok())
                    .is_some_and(|sq| (sq - q).abs() < 1e-9)
            })
            .map(|s| s.value)
    }
}

/// Parses Prometheus text exposition into types and samples.
///
/// # Errors
///
/// Returns a message naming the first malformed line (bad sample syntax,
/// unparseable value, or unterminated label set).
pub fn parse_prometheus(text: &str) -> Result<PromSnapshot, String> {
    let mut snap = PromSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE without a name", lineno + 1))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {}: TYPE {name} without a type", lineno + 1))?;
                snap.types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and other comments
        }
        snap.samples.push(parse_sample(line, lineno + 1)?);
    }
    Ok(snap)
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, String> {
    let (name_part, labels, rest) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
            (
                &line[..open],
                parse_labels(&line[open + 1..close], lineno)?,
                &line[close + 1..],
            )
        }
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("");
            (name, Vec::new(), parts.next().unwrap_or(""))
        }
    };
    let name = name_part.trim();
    if name.is_empty() {
        return Err(format!("line {lineno}: sample without a metric name"));
    }
    // The value is the first whitespace token after the name/labels; an
    // optional timestamp may follow and is ignored.
    let value_token = rest
        .split_whitespace()
        .next()
        .ok_or_else(|| format!("line {lineno}: sample {name} without a value"))?;
    let value = match value_token {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t
            .parse()
            .map_err(|_| format!("line {lineno}: bad value {t:?} for {name}"))?,
    };
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without `=`"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("line {lineno}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other, // \\ and \" unescape to themselves
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start().trim_start_matches(',').trim();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_maps_into_the_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("serve.predict.rows"),
            "serve_predict_rows"
        );
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn writer_emits_all_four_family_kinds_with_type_lines() {
        let reg = Registry::new();
        reg.counter("serve.http.requests").add(3);
        reg.gauge("serve.inflight").set(2.0);
        reg.histogram("gp.fit_ns").record(10.0);
        reg.histogram("gp.fit_ns").record(30.0);
        let lat = reg.latency_histogram("serve.predict.latency_ns");
        lat.record_ns(500_000);
        lat.record_ns(2_000_000);

        let text = prometheus_string(&reg);
        assert!(text.contains("# TYPE serve_http_requests counter\nserve_http_requests 3\n"));
        assert!(text.contains("# TYPE serve_inflight gauge\nserve_inflight 2\n"));
        assert!(text.contains("# TYPE gp_fit_ns summary\n"));
        assert!(text.contains("gp_fit_ns{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("gp_fit_ns_sum 40\n"));
        assert!(text.contains("gp_fit_ns_count 2\n"));
        assert!(text.contains("# TYPE serve_predict_latency_ns histogram\n"));
        assert!(text.contains("serve_predict_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_predict_latency_ns_count 2\n"));
        // Byte-identical on repeat scrape of unchanged state.
        assert_eq!(text, prometheus_string(&reg));
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let reg = Registry::new();
        reg.counter("c.total").add(7);
        reg.gauge("g.now").set(0.25);
        reg.histogram("h.vals").record(4.0);
        let lat = reg.latency_histogram("l.ns");
        for us in [100u64, 200, 400, 800] {
            lat.record_ns(us * 1_000);
        }
        let snap = parse_prometheus(&prometheus_string(&reg)).expect("parse");
        assert_eq!(
            snap.types.get("c_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(
            snap.types.get("l_ns").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(snap.value("c_total"), Some(7.0));
        assert_eq!(snap.value("g_now"), Some(0.25));
        assert_eq!(snap.value("l_ns_count"), Some(4.0));
        // Bucketed quantile lands within one bucket of the exact p50.
        let p50 = snap.quantile("l_ns", 0.5).unwrap();
        assert!((p50 - 200_000.0).abs() / 200_000.0 <= 0.25, "{p50}");
        // Summary quantile resolves through the quantile label.
        assert_eq!(snap.quantile("h_vals", 0.5), Some(4.0));
        assert_eq!(snap.quantile("absent", 0.5), None);
    }

    #[test]
    fn parser_handles_labels_escapes_and_special_values() {
        let text = concat!(
            "# HELP x something\n",
            "# TYPE x gauge\n",
            "x{path=\"a\\\"b\",le=\"+Inf\"} +Inf 1700000\n",
            "y NaN\n",
            "z -Inf\n",
        );
        let snap = parse_prometheus(text).expect("parse");
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(snap.samples[0].label("path"), Some("a\"b"));
        assert_eq!(snap.samples[0].label("le"), Some("+Inf"));
        assert!(snap.samples[0].value.is_infinite());
        assert!(snap.samples[1].value.is_nan());
        assert_eq!(snap.samples[2].value, f64::NEG_INFINITY);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("name{unterminated 1").is_err());
        assert!(parse_prometheus("name{k=unquoted} 1").is_err());
        assert!(parse_prometheus("name notanumber").is_err());
        assert!(parse_prometheus("lonely_name").is_err());
    }
}
