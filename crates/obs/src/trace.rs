//! Execution tracing: a bounded per-event span recorder and the Chrome
//! `trace_event` JSON exporter.
//!
//! The aggregate [`SpanStats`](crate::SpanStats) view answers "how much
//! time, in total, went to each span path"; tracing answers "*when* did
//! each occurrence run, and on which thread". Every completed [`Span`]
//! (see [`crate::Registry::span`]) additionally records one
//! [`TraceEvent`] — monotonic begin offset from the registry's epoch,
//! duration, and a small per-thread index — into a ring buffer capped at
//! [`DEFAULT_TRACE_CAPACITY`] events (oldest events are overwritten and
//! counted as dropped).
//!
//! Tracing is **off by default**: the only cost on the span hot path is
//! one relaxed atomic load. It is enabled per registry with
//! [`crate::Registry::enable_tracing`], or process-wide by setting
//! `VAESA_TRACE=1` before the [`crate::global`] registry is first touched.
//!
//! [`chrome_trace_string`]/[`write_chrome_trace`] export the buffer as
//! Chrome `trace_event` JSON (complete `"ph":"X"` events, timestamps in
//! microseconds) loadable in `chrome://tracing` or Perfetto; the
//! `vaesa-xtask` crate carries the matching parser/validator and the
//! flamegraph fold.

use crate::json::Obj;
use crate::Registry;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity (in events) of a registry's trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span occurrence recorded while tracing was enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span's `/`-separated path (same namespace as span stats).
    pub path: String,
    /// Small sequential index of the recording thread (1 = first thread
    /// that ever recorded; *not* an OS thread id).
    pub tid: u64,
    /// Span begin, nanoseconds after the registry's trace epoch.
    pub begin_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// Bounded ring buffer of trace events. Oldest-first retrieval; pushes
/// past capacity overwrite the oldest event and count as dropped.
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    capacity: usize,
    events: Vec<TraceEvent>,
    next: usize,
    dropped: u64,
}

impl TraceBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity,
            events: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// Replaces the capacity, clearing any recorded events.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.clear();
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Recorded events, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.next..]);
        out.extend_from_slice(&self.events[..self.next]);
        out
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// A small, stable, sequential index for the calling thread (1-based in
/// recording order). Used as the `tid` of trace events so traces stay
/// readable and deterministic in layout even though OS thread ids vary.
pub(crate) fn thread_index() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static INDEX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    INDEX.with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    })
}

/// Renders `registry`'s trace buffer as Chrome `trace_event` JSON: one
/// complete (`"ph":"X"`) event per recorded span, timestamps and
/// durations in microseconds, plus a process-name metadata event. The
/// result loads directly in `chrome://tracing` and Perfetto.
pub fn chrome_trace_string(registry: &Registry) -> String {
    let events = registry.trace_events();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut meta = Obj::new();
    let mut name_arg = Obj::new();
    name_arg.str_field("name", "vaesa");
    meta.str_field("name", "process_name")
        .str_field("ph", "M")
        .u64_field("pid", 1)
        .raw_field("args", &name_arg.finish());
    out.push_str(&meta.finish());
    for event in &events {
        let mut o = Obj::new();
        o.str_field("name", &event.path)
            .str_field("cat", "span")
            .str_field("ph", "X")
            .f64_field("ts", event.begin_ns as f64 / 1_000.0)
            .f64_field("dur", event.dur_ns as f64 / 1_000.0)
            .u64_field("pid", 1)
            .u64_field("tid", event.tid);
        out.push(',');
        out.push_str(&o.finish());
    }
    out.push_str("],\"otherData\":{\"droppedEvents\":\"");
    out.push_str(&registry.trace_dropped().to_string());
    out.push_str("\"}}\n");
    out
}

/// Writes [`chrome_trace_string`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_chrome_trace(registry: &Registry, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_string(registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_overwrites_oldest_and_counts_dropped() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5u64 {
            buf.push(TraceEvent {
                path: format!("s{i}"),
                tid: 1,
                begin_ns: i * 10,
                dur_ns: 1,
            });
        }
        let events = buf.snapshot();
        assert_eq!(events.len(), 3);
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["s2", "s3", "s4"], "oldest first after wrap");
        assert_eq!(buf.dropped(), 2);
        buf.clear();
        assert!(buf.snapshot().is_empty());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut buf = TraceBuffer::new(0);
        buf.push(TraceEvent {
            path: "s".into(),
            tid: 1,
            begin_ns: 0,
            dur_ns: 1,
        });
        assert!(buf.snapshot().is_empty());
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn thread_index_is_stable_per_thread_and_positive() {
        let here = thread_index();
        assert!(here >= 1);
        assert_eq!(here, thread_index());
        let other = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn chrome_trace_has_complete_events_and_metadata() {
        let reg = Registry::new();
        reg.enable_tracing();
        reg.record_trace_event("dse/run", 2, 1_500, 2_500);
        let json = chrome_trace_string(&reg);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"dse/run\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"dur\":2.5"));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"droppedEvents\":\"0\""));
    }

    #[test]
    fn chrome_trace_writer_creates_directories() {
        let dir = std::env::temp_dir().join(format!("vaesa_trace_test_{}", std::process::id()));
        let path = dir.join("nested/trace.json");
        let reg = Registry::new();
        reg.enable_tracing();
        reg.record_trace_event("a", 1, 0, 10);
        write_chrome_trace(&reg, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"name\":\"a\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
