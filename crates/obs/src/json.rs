//! A tiny hand-rolled JSON object writer, so the crate stays
//! dependency-free. Only what manifests need: flat objects with string /
//! integer / float / float-array / nested-object fields, written in
//! insertion order (callers insert in sorted order for determinism).

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes).
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats one `f64` as a JSON token: shortest round-trip representation
/// for finite values, `null` for NaN/infinities (JSON has no spelling for
/// them).
pub(crate) fn float_token(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An in-progress JSON object literal.
#[derive(Debug)]
pub(crate) struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    pub(crate) fn new() -> Self {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    pub(crate) fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    pub(crate) fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub(crate) fn f64_field(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&float_token(v));
        self
    }

    pub(crate) fn f64_array_field(&mut self, k: &str, vs: &[f64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&float_token(*v));
        }
        self.buf.push(']');
        self
    }

    /// Inserts `v`, an already-serialized JSON value, verbatim.
    pub(crate) fn raw_field(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_newlines_and_control_chars() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn floats_render_shortest_and_non_finite_as_null() {
        assert_eq!(float_token(0.1), "0.1");
        assert_eq!(float_token(2.0), "2");
        assert_eq!(float_token(f64::NAN), "null");
        assert_eq!(float_token(f64::INFINITY), "null");
    }

    #[test]
    fn objects_assemble_in_insertion_order() {
        let mut o = Obj::new();
        o.str_field("record", "demo")
            .u64_field("count", 3)
            .f64_field("value", 1.5)
            .f64_array_field("values", &[1.0, 2.5])
            .raw_field("nested", "{\"a\":1}");
        assert_eq!(
            o.finish(),
            "{\"record\":\"demo\",\"count\":3,\"value\":1.5,\
             \"values\":[1,2.5],\"nested\":{\"a\":1}}"
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(Obj::new().finish(), "{}");
    }
}
