//! Bounded, constant-memory instruments for live services.
//!
//! The exact-sample [`Histogram`](crate::Histogram) keeps (a capped set of)
//! raw samples — the right trade-off for batch experiments where a run
//! records thousands of values and exact percentiles matter. A daemon
//! serving traffic for a week cannot afford per-sample retention at all, so
//! this module provides two fixed-footprint companions:
//!
//! - [`LatencyHistogram`] — log-spaced nanosecond buckets, lock-free O(1)
//!   recording, and percentiles exact to within one bucket's resolution
//!   (≤ 25% relative width, four sub-buckets per power of two);
//! - [`SlidingWindow`] — a ring of N one-second slices over the same bucket
//!   layout, answering "rate and p99 over the last N seconds" while
//!   forgetting everything older.
//!
//! Both are time-source-agnostic: callers pass nanosecond values (and, for
//! the window, a second index derived from a monotonic clock), so tests and
//! deterministic replays can drive them without wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sub-bucket resolution: each power-of-two octave splits into `1 << 2`
/// log-spaced buckets, bounding the relative quantile error at 25%.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Smallest resolved value: everything under `2^MIN_SHIFT` ns (256 ns)
/// lands in the shared underflow bucket.
const MIN_SHIFT: u32 = 8;
/// Largest resolved value: everything at or above `2^MAX_SHIFT` ns
/// (~4.6 minutes) lands in the shared overflow bucket.
const MAX_SHIFT: u32 = 38;
/// Total bucket count: underflow + resolved octaves + overflow.
pub(crate) const BUCKET_COUNT: usize = 2 + (MAX_SHIFT - MIN_SHIFT) as usize * SUBS;

/// The bucket index for a nanosecond value.
pub(crate) fn bucket_index(v_ns: u64) -> usize {
    if v_ns < (1 << MIN_SHIFT) {
        return 0;
    }
    if v_ns >= (1 << MAX_SHIFT) {
        return BUCKET_COUNT - 1;
    }
    let octave = 63 - v_ns.leading_zeros(); // MIN_SHIFT..MAX_SHIFT
    let sub = ((v_ns >> (octave - SUB_BITS)) as usize) & (SUBS - 1);
    1 + (octave - MIN_SHIFT) as usize * SUBS + sub
}

/// The inclusive upper bound of bucket `i` in nanoseconds, or `None` for
/// the overflow bucket (rendered as `+Inf` in Prometheus exposition).
pub(crate) fn bucket_upper_ns(i: usize) -> Option<u64> {
    if i == 0 {
        return Some((1 << MIN_SHIFT) - 1);
    }
    if i >= BUCKET_COUNT - 1 {
        return None;
    }
    let k = i - 1;
    let octave = MIN_SHIFT + (k / SUBS) as u32;
    let sub = (k % SUBS) as u64;
    // Bucket k covers [2^e + sub·2^(e-2), 2^e + (sub+1)·2^(e-2)).
    Some((1u64 << (octave - SUB_BITS)) * (SUBS as u64 + sub + 1) - 1)
}

/// A fixed-footprint latency histogram: log-spaced nanosecond buckets with
/// lock-free O(1) recording. Memory is constant (`BUCKET_COUNT` atomics)
/// no matter how many samples arrive, so a week-long daemon can record
/// every request into it. Quantiles are exact to the recording bucket's
/// width; exact running count, sum, min, and max are kept alongside.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Point-in-time copy of a [`LatencyHistogram`], taken for exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all recorded nanoseconds.
    pub sum_ns: u64,
    /// Exact smallest sample (0 when empty).
    pub min_ns: u64,
    /// Exact largest sample (0 when empty).
    pub max_ns: u64,
    /// Median, at bucket resolution.
    pub p50_ns: u64,
    /// 90th percentile, at bucket resolution.
    pub p90_ns: u64,
    /// 99th percentile, at bucket resolution.
    pub p99_ns: u64,
    /// Non-empty buckets as `(upper_bound_ns, cumulative_count)`, upper
    /// bounds ascending; `None` marks the overflow (`+Inf`) bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample. Lock-free; a handful of relaxed
    /// atomic operations regardless of history size.
    pub fn record_ns(&self, v_ns: u64) {
        self.counts[bucket_index(v_ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(v_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(v_ns, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] sample.
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of every recorded sample, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution, or `None`
    /// when empty. The returned value is the containing bucket's upper
    /// bound, clamped to the exact observed min/max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let min = self.min_ns.load(Ordering::Relaxed);
        let max = self.max_ns.load(Ordering::Relaxed);
        if q == 0.0 {
            return Some(min); // the 0-quantile is the exact minimum
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for i in 0..BUCKET_COUNT {
            cum += self.counts[i].load(Ordering::Relaxed);
            if cum >= rank {
                let upper = bucket_upper_ns(i).unwrap_or(max);
                return Some(upper.clamp(min, max));
            }
        }
        Some(max)
    }

    /// A consistent-enough copy of the whole histogram (relaxed reads;
    /// exact under quiesced recording).
    pub fn snapshot(&self) -> Option<LatencySnapshot> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for i in 0..BUCKET_COUNT {
            let c = self.counts[i].load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                buckets.push((bucket_upper_ns(i), cum));
            }
        }
        Some(LatencySnapshot {
            count,
            sum_ns: self.sum_ns(),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: self.quantile_ns(0.50).unwrap_or(0),
            p90_ns: self.quantile_ns(0.90).unwrap_or(0),
            p99_ns: self.quantile_ns(0.99).unwrap_or(0),
            buckets,
        })
    }
}

/// One second's worth of samples inside a [`SlidingWindow`].
struct Slice {
    sec: u64,
    count: u64,
    sum_ns: u64,
    buckets: Vec<u32>,
}

impl Slice {
    fn new() -> Self {
        Slice {
            sec: u64::MAX,
            count: 0,
            sum_ns: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    fn reset(&mut self, sec: u64) {
        self.sec = sec;
        self.count = 0;
        self.sum_ns = 0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

/// A rate/quantile aggregator over the trailing N seconds: a ring of
/// one-second [`Slice`]s sharing the [`LatencyHistogram`] bucket layout.
/// Memory is `N × BUCKET_COUNT` words, constant for the process lifetime;
/// slices older than the window are recycled in place.
///
/// The caller supplies the current second index (derived from a monotonic
/// clock, e.g. `Registry` epoch elapsed seconds), keeping the type free of
/// wall-clock reads and deterministic under test.
#[derive(Debug)]
pub struct SlidingWindow {
    state: Mutex<Vec<Slice>>,
    window: usize,
}

impl std::fmt::Debug for Slice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slice")
            .field("sec", &self.sec)
            .field("count", &self.count)
            .finish()
    }
}

impl SlidingWindow {
    /// A window covering the trailing `window_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is zero.
    pub fn new(window_secs: usize) -> Self {
        assert!(window_secs >= 1, "window must cover at least one second");
        SlidingWindow {
            state: Mutex::new((0..window_secs).map(|_| Slice::new()).collect()),
            window: window_secs,
        }
    }

    /// The window length in seconds.
    pub fn window_secs(&self) -> usize {
        self.window
    }

    /// Records a nanosecond sample observed during second `now_sec`.
    pub fn record_at(&self, now_sec: u64, v_ns: u64) {
        let mut slices = self.state.lock().expect("window lock");
        let slot = (now_sec as usize) % self.window;
        if slices[slot].sec != now_sec {
            slices[slot].reset(now_sec);
        }
        let slice = &mut slices[slot];
        slice.count += 1;
        slice.sum_ns = slice.sum_ns.saturating_add(v_ns);
        slice.buckets[bucket_index(v_ns)] += 1;
    }

    /// Samples recorded within the window ending at `now_sec` (inclusive).
    pub fn count(&self, now_sec: u64) -> u64 {
        self.fold(now_sec, |acc, s| acc + s.count)
    }

    /// Events per second over the window ending at `now_sec`.
    pub fn rate(&self, now_sec: u64) -> f64 {
        self.count(now_sec) as f64 / self.window as f64
    }

    /// Mean sample over the window, or `None` when the window is empty.
    pub fn mean_ns(&self, now_sec: u64) -> Option<f64> {
        let (count, sum) = {
            let slices = self.state.lock().expect("window lock");
            slices
                .iter()
                .filter(|s| Self::live(s.sec, now_sec, self.window))
                .fold((0u64, 0u64), |(c, t), s| (c + s.count, t + s.sum_ns))
        };
        (count > 0).then(|| sum as f64 / count as f64)
    }

    /// The `q`-quantile over the window at bucket resolution, or `None`
    /// when the window is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, now_sec: u64, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let slices = self.state.lock().expect("window lock");
        let mut merged = [0u64; BUCKET_COUNT];
        let mut total = 0u64;
        for s in slices
            .iter()
            .filter(|s| Self::live(s.sec, now_sec, self.window))
        {
            total += s.count;
            for (m, b) in merged.iter_mut().zip(&s.buckets) {
                *m += u64::from(*b);
            }
        }
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in merged.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper_ns(i).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Whether a slice stamped `sec` is inside the window ending `now_sec`.
    fn live(sec: u64, now_sec: u64, window: usize) -> bool {
        sec <= now_sec && now_sec - sec < window as u64
    }

    fn fold(&self, now_sec: u64, f: impl Fn(u64, &Slice) -> u64) -> u64 {
        let slices = self.state.lock().expect("window lock");
        slices
            .iter()
            .filter(|s| Self::live(s.sec, now_sec, self.window))
            .fold(0u64, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_covers_the_range() {
        let mut prev = 0u64;
        for i in 0..BUCKET_COUNT - 1 {
            let upper = bucket_upper_ns(i).unwrap();
            assert!(upper > prev || i == 0, "bucket {i} not ascending");
            prev = upper;
        }
        assert_eq!(bucket_upper_ns(BUCKET_COUNT - 1), None);
        // Every value maps into a bucket whose bounds contain it.
        for v in [0, 1, 255, 256, 257, 1_000, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT);
            if let Some(upper) = bucket_upper_ns(i) {
                assert!(v <= upper, "v={v} above bucket {i} upper {upper}");
            }
            if i > 0 {
                let below = bucket_upper_ns(i - 1).unwrap();
                assert!(v > below, "v={v} under bucket {i} lower bound");
            }
        }
    }

    #[test]
    fn latency_histogram_quantiles_are_bucket_accurate() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), None);
        assert_eq!(h.snapshot(), None);
        // 1..=1000 µs uniformly.
        for us in 1..=1000u64 {
            h.record_ns(us * 1_000);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_ns(), (1..=1000u64).sum::<u64>() * 1_000);
        for (q, exact) in [(0.50, 500_000.0), (0.90, 900_000.0), (0.99, 990_000.0)] {
            let got = h.quantile_ns(q).unwrap() as f64;
            let err = (got - exact).abs() / exact;
            assert!(err <= 0.25, "q={q}: got {got}, exact {exact}, err {err}");
            assert!(got >= exact, "bucket upper bounds never under-report");
        }
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min_ns, 1_000);
        assert_eq!(snap.max_ns, 1_000_000);
        assert_eq!(snap.buckets.last().unwrap().1, 1000, "cumulative total");
        let mut prev = 0;
        for &(_, cum) in &snap.buckets {
            assert!(cum > prev, "cumulative counts strictly ascend");
            prev = cum;
        }
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(0.0), Some(0));
        // The overflow bucket reports the exact observed max.
        assert_eq!(h.quantile_ns(1.0), Some(u64::MAX));
        let snap = h.snapshot().unwrap();
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[1], (None, 2));
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_sample() {
        let h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(750));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), Some(750_000), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn latency_histogram_rejects_out_of_range_quantile() {
        let _ = LatencyHistogram::new().quantile_ns(2.0);
    }

    #[test]
    fn sliding_window_forgets_old_slices() {
        let w = SlidingWindow::new(3);
        w.record_at(10, 1_000);
        w.record_at(10, 2_000);
        w.record_at(11, 3_000);
        assert_eq!(w.count(11), 3);
        assert!((w.rate(11) - 1.0).abs() < 1e-12);
        // Advance past second 10: its slice ages out of the window.
        assert_eq!(w.count(13), 1);
        assert_eq!(w.count(20), 0);
        assert_eq!(w.quantile_ns(20, 0.5), None);
        // The slot for second 13 recycles second 10's ring position.
        w.record_at(13, 9_000);
        assert_eq!(w.count(13), 2);
    }

    #[test]
    fn sliding_window_quantiles_merge_slices() {
        let w = SlidingWindow::new(5);
        for sec in 0..5u64 {
            for i in 0..20u64 {
                w.record_at(sec, (sec * 20 + i + 1) * 10_000);
            }
        }
        assert_eq!(w.count(4), 100);
        let p50 = w.quantile_ns(4, 0.5).unwrap() as f64;
        let exact = 500_000.0;
        assert!((p50 - exact).abs() / exact <= 0.25, "p50 {p50}");
        assert!(w.mean_ns(4).unwrap() > 0.0);
        // At now=6 the window [2, 6] retains only seconds 2..=4.
        assert_eq!(w.count(6), 60);
    }

    #[test]
    #[should_panic(expected = "at least one second")]
    fn sliding_window_rejects_zero_width() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn latency_histogram_is_safe_under_concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns((t * 1000 + i) * 100);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().unwrap().buckets.last().unwrap().1, 4000);
    }
}
