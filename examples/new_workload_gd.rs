//! Few-sample optimization for an unseen workload with `vae_gd`.
//!
//! The paper's §IV-D use case: an accelerator must be tuned for a brand-new
//! layer with only a handful of simulator queries. Each `vae_gd` sample
//! descends the trained predictor surface in latent space (free — no
//! simulator involved) and spends exactly one scheduler + cost-model query
//! on the final decoded design.
//!
//! Run with: `cargo run --release --example new_workload_gd`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{run_random_layer, run_vae_gd, HardwareEvaluator};
use vaesa_repro::core::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;
use vaesa_repro::dse::GdConfig;

fn main() {
    let samples = 10; // simulator queries we are willing to spend
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let pool = workloads::training_layers();

    // The unseen layer: Table IV #12, a large strided OCR convolution.
    let layer = workloads::gd_test_layers()[11].clone();
    println!("target layer: {layer}");

    println!("training VAESA on the Table III pool (the target layer is unseen)...");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let dataset = DatasetBuilder::new(&space, pool)
        .random_configs(250)
        .grid_per_axis(2)
        .build(&scheduler, &mut rng);
    let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 64,
        learning_rate: 1e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);

    let single = vec![layer.clone()];
    let evaluator = HardwareEvaluator::new(&space, &scheduler, &single);

    println!("\nspending {samples} simulator queries per method:");
    let vae_gd = run_vae_gd(
        &evaluator,
        &model,
        &dataset,
        &layer,
        samples,
        GdConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(200),
    );
    let random = run_random_layer(
        &evaluator,
        &dataset.hw_norm,
        samples,
        &mut ChaCha8Rng::seed_from_u64(200),
    );

    let v = vae_gd.best_value().unwrap_or(f64::NAN);
    let r = random.best_value().unwrap_or(f64::NAN);
    println!("  vae_gd best EDP: {v:.4e}");
    println!("  random best EDP: {r:.4e}");
    if v < r {
        println!(
            "  vae_gd found a {:.1}% lower-EDP design with the same budget",
            100.0 * (1.0 - v / r)
        );
    } else {
        println!("  random won this seed — rerun with more samples or another seed");
    }
}
