//! Optimizing latency and energy separately (§IV-A2).
//!
//! The paper notes the flow "can optimize the latency and energy
//! separately"; this example runs three latent-space searches on the same
//! trained model — one per metric — and shows how the chosen designs
//! differ: the latency-optimal machine maximizes compute, the
//! energy-optimal one favors modest compute with large weight buffers, and
//! the EDP optimum sits between them.
//!
//! Run with: `cargo run --release --example latency_only`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{decode_to_config, run_vae_bo, HardwareEvaluator, Metric};
use vaesa_repro::core::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;

fn main() {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = workloads::alexnet();
    let mut rng = ChaCha8Rng::seed_from_u64(17);

    println!("training VAESA once...");
    let dataset = DatasetBuilder::new(&space, workloads::training_layers())
        .random_configs(250)
        .grid_per_axis(2)
        .build(&scheduler, &mut rng);
    let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 64,
        learning_rate: 1e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);

    println!("searching AlexNet with three objectives (80 samples each):\n");
    for (name, metric) in [
        ("latency", Metric::Latency),
        ("energy", Metric::Energy),
        ("EDP", Metric::Edp),
    ] {
        let evaluator = HardwareEvaluator::with_metric(&space, &scheduler, &layers, metric);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let trace = run_vae_bo(&evaluator, &model, &dataset, 80, &mut rng);
        let z = trace.best_point().expect("found a design");
        let config = decode_to_config(&model, z, &dataset.hw_norm, &evaluator);
        let arch = space.describe(&config);
        let w = evaluator.workload_eval(&config).expect("valid design");
        println!("minimize {name}:");
        println!("  design: {arch}");
        println!(
            "  latency {:.3e} cyc | energy {:.3e} pJ | EDP {:.3e}\n",
            w.total_latency_cycles,
            w.total_energy_pj,
            w.edp()
        );
    }
    println!("note how the latency-optimal design maximizes MACs while the");
    println!("energy-optimal one trades throughput for cheaper data movement.");
}
