//! Quickstart: the full VAESA pipeline in ~60 lines.
//!
//! 1. Build a labeled dataset by sampling the Table II design space and
//!    scoring each design on AlexNet's layers with the scheduler + cost
//!    model.
//! 2. Train the VAE + predictor model.
//! 3. Run Bayesian optimization in the learned latent space and print the
//!    best hardware configuration found.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{decode_to_config, run_vae_bo, HardwareEvaluator};
use vaesa_repro::core::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = workloads::alexnet();

    // 1. Dataset: 200 random designs (plus a coarse grid), labeled per layer.
    println!("building dataset...");
    let dataset = DatasetBuilder::new(&space, layers.clone())
        .random_configs(200)
        .grid_per_axis(2)
        .build(&scheduler, &mut rng);
    println!("  {} labeled (architecture, layer) samples", dataset.len());

    // 2. Train the VAE and predictor heads jointly.
    println!("training VAESA (4-D latent space)...");
    let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    let history = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 64,
        learning_rate: 1e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);
    let last = history.last();
    println!(
        "  final losses: recon {:.4}, kld {:.2}, latency {:.4}, energy {:.4}",
        last.recon, last.kld, last.latency, last.energy
    );

    // 3. Search the latent space with Bayesian optimization.
    println!("running vae_bo for 100 samples...");
    let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);
    let trace = run_vae_bo(&evaluator, &model, &dataset, 100, &mut rng);

    let best_edp = trace.best_value().expect("found a valid design");
    let best_z = trace.best_point().expect("best point recorded");
    let config = decode_to_config(&model, best_z, &dataset.hw_norm, &evaluator);
    let arch = space.describe(&config);

    println!("\nbest design found (AlexNet EDP = {best_edp:.3e} cycles*pJ):");
    println!("  {arch}");
    let train_best = dataset
        .records
        .iter()
        .filter_map(|r| evaluator.edp_of_config(&r.config))
        .fold(f64::INFINITY, f64::min);
    println!("  (for comparison, best workload EDP among training configs: {train_best:.3e})");
}
