//! ResNet-50 design-space exploration: `random` vs `bo` vs `vae_bo`.
//!
//! A compact version of the paper's Figure 11 study on one workload: all
//! three search methods get the same sample budget and seed, and the
//! best-EDP-so-far trajectories are printed side by side.
//!
//! Run with: `cargo run --release --example resnet50_dse`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{run_bo, run_random, run_vae_bo, HardwareEvaluator};
use vaesa_repro::core::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;
use vaesa_repro::dse::Trace;

fn main() {
    let budget = 150;
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let resnet = workloads::resnet50();
    let pool = workloads::training_layers();

    // Train on the full Table III layer pool, as the paper does.
    println!("building dataset and training VAESA...");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let dataset = DatasetBuilder::new(&space, pool)
        .random_configs(250)
        .grid_per_axis(2)
        .build(&scheduler, &mut rng);
    let mut model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 64,
        learning_rate: 1e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);

    let evaluator = HardwareEvaluator::new(&space, &scheduler, &resnet);
    println!("searching ({budget} samples per method)...\n");

    let t_random = run_random(
        &evaluator,
        &dataset.hw_norm,
        budget,
        &mut ChaCha8Rng::seed_from_u64(100),
    );
    let t_bo = run_bo(
        &evaluator,
        &dataset.hw_norm,
        budget,
        &mut ChaCha8Rng::seed_from_u64(100),
    );
    let t_vae_bo = run_vae_bo(
        &evaluator,
        &model,
        &dataset,
        budget,
        &mut ChaCha8Rng::seed_from_u64(100),
    );

    let curve = |t: &Trace, i: usize| {
        t.samples()
            .get(i)
            .and_then(|s| s.best_so_far)
            .map_or_else(|| "-".to_string(), |v| format!("{v:.3e}"))
    };
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "sample", "random", "bo", "vae_bo"
    );
    for &i in &[9usize, 24, 49, 99, budget - 1] {
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            i + 1,
            curve(&t_random, i),
            curve(&t_bo, i),
            curve(&t_vae_bo, i)
        );
    }

    println!("\nfinal best ResNet-50 EDP:");
    for t in [&t_random, &t_bo, &t_vae_bo] {
        println!(
            "  {:>8}: {:.4e}",
            t.label(),
            t.best_value().unwrap_or(f64::NAN)
        );
    }
}
