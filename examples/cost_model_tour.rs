//! A tour of the substrate: drive the scheduler and analytical cost model
//! directly, without any machine learning.
//!
//! Shows how a `(architecture, layer)` pair becomes a mapping and an
//! evaluation — the exact path every DSE sample takes — and prints the
//! energy breakdown that shapes the optimization landscape.
//!
//! Run with: `cargo run --release --example cost_model_tour`

use vaesa_repro::accel::{workloads, ArchDescription};
use vaesa_repro::cosa::Scheduler;
use vaesa_repro::timeloop::Mapping;

fn main() {
    // A midrange Simba-like configuration.
    let arch = ArchDescription {
        pe_count: 16,
        macs_per_pe: 1024,
        accum_buf_bytes: 32 * 1024,
        weight_buf_bytes: 512 * 1024,
        input_buf_bytes: 64 * 1024,
        global_buf_bytes: 128 * 1024,
    };
    println!("architecture: {arch}");
    println!("  total MACs: {}", arch.total_macs());
    println!("  on-chip SRAM: {} KiB\n", arch.total_buffer_bytes() / 1024);

    let scheduler = Scheduler::default();
    let layer = &workloads::resnet50()[6]; // 3x3, 28x28, 128->128, stride 1
    println!("layer: {layer}");
    println!("  MACs: {:.3e}\n", layer.macs() as f64);

    // The naive mapping: no tiling, no parallelism.
    let unit = scheduler
        .model()
        .evaluate(&arch, layer, &Mapping::unit())
        .expect("unit mapping is always valid");
    println!("unit mapping:      {unit}");

    // The scheduler's one-shot mapping.
    let scheduled = scheduler.schedule(&arch, layer).expect("schedulable");
    println!("scheduled mapping: {}", scheduled.evaluation);
    println!("  chosen tiling: {}", scheduled.mapping);
    println!(
        "  speedup over unit mapping: {:.0}x latency, {:.0}x EDP\n",
        unit.latency_cycles / scheduled.evaluation.latency_cycles,
        unit.edp() / scheduled.evaluation.edp()
    );

    // Where does the energy go?
    let e = &scheduled.evaluation.energy;
    let total = e.total();
    println!("energy breakdown:");
    for (name, pj) in [
        ("MACs", e.mac_pj),
        ("DRAM", e.dram_pj),
        ("global buffer", e.global_buf_pj),
        ("weight buffer", e.weight_buf_pj),
        ("input buffer", e.input_buf_pj),
        ("accum buffer", e.accum_buf_pj),
    ] {
        println!(
            "  {name:>14}: {pj:>12.3e} pJ ({:>5.1}%)",
            100.0 * pj / total
        );
    }

    // Whole-network cost.
    let resnet = workloads::resnet50();
    let w = scheduler
        .schedule_workload(&arch, &resnet)
        .expect("all layers schedulable");
    println!(
        "\nResNet-50 (24 unique layers): latency {:.3e} cycles, energy {:.3e} pJ, EDP {:.3e}",
        w.total_latency_cycles,
        w.total_energy_pj,
        w.edp()
    );
}
