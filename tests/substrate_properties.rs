//! Property-based tests over the substrate crates: the design space, the
//! scheduler, and the cost model must uphold their invariants for *any*
//! design point, not just the handful exercised by unit tests.

use proptest::prelude::*;
use vaesa_repro::accel::{workloads, ArchDescription, DesignSpace, LayerShape};
use vaesa_repro::cosa::Scheduler;
use vaesa_repro::timeloop::{CostModel, Mapping};

fn arb_config_indices() -> impl Strategy<Value = [usize; 6]> {
    (
        0usize..5,
        0usize..64,
        0usize..128,
        0usize..32768,
        0usize..2048,
        0usize..131072,
    )
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f])
}

fn arb_layer() -> impl Strategy<Value = LayerShape> {
    (
        1u64..=7,
        1u64..=7,
        1u64..=64,
        1u64..=64,
        1u64..=512,
        1u64..=512,
        1u64..=2,
        1u64..=2,
    )
        .prop_map(|(r, s, p, q, c, k, sw, sh)| LayerShape::new("prop", r, s, p, q, c, k, sw, sh))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every index combination within Table II bounds is a valid config,
    /// and feature round-trips (raw and log) recover it exactly.
    #[test]
    fn design_space_roundtrips(indices in arb_config_indices()) {
        let space = DesignSpace::paper();
        let config = space.config_from_indices(indices).expect("in bounds");
        let raw = space.raw_features(&config);
        prop_assert_eq!(space.config_from_raw_nearest(&raw), config);
        let logs = space.log_features(&config);
        prop_assert_eq!(space.config_from_log_nearest(&logs), config);
        // Raw features are positive and within Table II maxima.
        prop_assert!(raw.iter().all(|&v| v > 0.0));
        prop_assert!(raw[0] <= 64.0 && raw[1] <= 4096.0);
    }

    /// The cost model never returns non-positive latency/energy for a valid
    /// mapping, and the unit mapping is valid whenever buffers can hold a
    /// single element footprint.
    #[test]
    fn cost_model_outputs_are_positive(indices in arb_config_indices(), layer in arb_layer()) {
        let space = DesignSpace::paper();
        let config = space.config_from_indices(indices).expect("in bounds");
        let arch = space.describe(&config);
        let model = CostModel::default();
        if let Ok(eval) = model.evaluate(&arch, &layer, &Mapping::unit()) {
            prop_assert!(eval.latency_cycles > 0.0);
            prop_assert!(eval.energy_pj > 0.0);
            prop_assert!(eval.edp() > 0.0);
            prop_assert!(eval.area_mm2 > 0.0);
            prop_assert!(eval.latency_cycles >= eval.compute_cycles);
            // MACs are mapping-independent and match the layer.
            prop_assert_eq!(eval.counts.macs, layer.macs() as f64);
        }
    }

    /// Whenever the scheduler produces a mapping, that mapping (a) passes
    /// the cost model's own validity checks and (b) never loses to the unit
    /// mapping — the scheduler is quality-improving by construction.
    #[test]
    fn scheduler_mappings_are_valid_and_no_worse(
        indices in arb_config_indices(),
        layer in arb_layer(),
    ) {
        let space = DesignSpace::paper();
        let config = space.config_from_indices(indices).expect("in bounds");
        let arch = space.describe(&config);
        let scheduler = Scheduler::default();
        match scheduler.schedule(&arch, &layer) {
            Ok(s) => {
                let re = scheduler.model().evaluate(&arch, &layer, &s.mapping)
                    .expect("scheduled mapping must be valid");
                prop_assert!((re.edp() - s.evaluation.edp()).abs() <= 1e-9 * re.edp());
                if let Ok(unit) = scheduler.model().evaluate(&arch, &layer, &Mapping::unit()) {
                    prop_assert!(s.evaluation.edp() <= unit.edp() * (1.0 + 1e-12));
                }
                // Spatial factors respect the hardware.
                prop_assert!(s.mapping.spatial_k <= arch.pe_count);
                prop_assert!(s.mapping.spatial_c <= arch.macs_per_pe);
            }
            Err(_) => {
                // If scheduling failed, the unit mapping must also be
                // infeasible (the scheduler starts from it).
                prop_assert!(scheduler
                    .model()
                    .evaluate(&arch, &layer, &Mapping::unit())
                    .is_err());
            }
        }
    }

    /// Workload EDP equals (sum of latencies) x (sum of energies).
    #[test]
    fn workload_edp_is_product_of_sums(indices in arb_config_indices()) {
        let space = DesignSpace::paper();
        let config = space.config_from_indices(indices).expect("in bounds");
        let arch = space.describe(&config);
        let scheduler = Scheduler::default();
        let layers = &workloads::alexnet()[..3];
        if let Ok(w) = scheduler.schedule_workload(&arch, layers) {
            let lat: f64 = w.layers.iter().map(|l| l.evaluation.latency_cycles).sum();
            let en: f64 = w.layers.iter().map(|l| l.evaluation.energy_pj).sum();
            prop_assert!((w.edp() - lat * en).abs() <= 1e-9 * w.edp());
        }
    }
}

#[test]
fn bigger_buffers_never_invalidate_a_schedulable_point() {
    // Monotonicity spot-check: growing every buffer keeps validity.
    let scheduler = Scheduler::default();
    let layer = workloads::resnet50()[6].clone();
    let small = ArchDescription {
        pe_count: 8,
        macs_per_pe: 128,
        accum_buf_bytes: 2048,
        weight_buf_bytes: 16384,
        input_buf_bytes: 8192,
        global_buf_bytes: 32768,
    };
    if scheduler.schedule(&small, &layer).is_ok() {
        let big = ArchDescription {
            accum_buf_bytes: small.accum_buf_bytes * 4,
            weight_buf_bytes: small.weight_buf_bytes * 4,
            input_buf_bytes: small.input_buf_bytes * 4,
            global_buf_bytes: small.global_buf_bytes * 4,
            ..small
        };
        assert!(scheduler.schedule(&big, &layer).is_ok());
    }
}
