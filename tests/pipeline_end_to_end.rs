//! End-to-end integration test: dataset construction through latent-space
//! search, spanning every crate in the workspace.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{decode_to_config, run_vae_bo, HardwareEvaluator};
use vaesa_repro::core::{DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;

fn quick_train(dataset: &vaesa_repro::core::Dataset, dz: usize, seed: u64) -> VaesaModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(dz), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 20,
        batch_size: 32,
        learning_rate: 3e-3,
    })
    .train_vae(&mut model, dataset, &mut rng);
    model
}

#[test]
fn full_pipeline_finds_valid_competitive_design() {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = workloads::alexnet();
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    let dataset = DatasetBuilder::new(&space, layers.clone())
        .random_configs(80)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    assert!(dataset.len() >= 70, "dataset too small: {}", dataset.len());

    let model = quick_train(&dataset, 4, 2);
    let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);
    let trace = run_vae_bo(&evaluator, &model, &dataset, 40, &mut rng);

    assert_eq!(trace.len(), 40);
    let best = trace.best_value().expect("found valid designs");
    assert!(best > 0.0 && best.is_finite());

    // The decoded best design must be a legal configuration scoring the
    // same EDP when re-evaluated from scratch.
    let z = trace.best_point().expect("best point");
    let config = decode_to_config(&model, z, &dataset.hw_norm, &evaluator);
    let again = evaluator.edp_of_config(&config).expect("valid design");
    assert!(
        (again - best).abs() <= 1e-9 * best,
        "re-evaluation mismatch"
    );

    // Competitive: within 10x of the best *workload* EDP among the
    // training configurations, despite only 40 samples. (Per-record EDPs
    // are single-layer numbers and not comparable to workload EDP.)
    let train_best = dataset
        .records
        .iter()
        .filter_map(|r| evaluator.edp_of_config(&r.config))
        .fold(f64::INFINITY, f64::min);
    assert!(
        best <= train_best * 10.0,
        "latent search best {best:.3e} far from training best {train_best:.3e}"
    );
}

#[test]
fn pipeline_is_reproducible_across_runs() {
    let run = || {
        let space = DesignSpace::paper();
        let scheduler = CachedScheduler::default();
        let layers = workloads::deepbench();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dataset = DatasetBuilder::new(&space, layers.clone())
            .random_configs(40)
            .grid_per_axis(0)
            .build(&scheduler, &mut rng);
        let model = quick_train(&dataset, 2, 6);
        let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);
        let trace = run_vae_bo(&evaluator, &model, &dataset, 15, &mut rng);
        (dataset.len(), trace.best_value())
    };
    assert_eq!(run(), run());
}

#[test]
fn encoded_training_points_decode_close_to_themselves() {
    // The "reconstructible" property: encode-decode-snap should recover
    // designs near the originals for most training points.
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = workloads::deepbench();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let dataset = DatasetBuilder::new(&space, layers.clone())
        .random_configs(60)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    let model = quick_train(&dataset, 4, 10);
    let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);

    let mut log_errors = Vec::new();
    for record in dataset.records.iter().take(50) {
        let normalized = dataset.hw_norm.transform_row(&record.hw_raw);
        let z = model.encode_mean(&vaesa_repro::nn::Tensor::row_vector(&normalized));
        let config = decode_to_config(&model, z.as_slice(), &dataset.hw_norm, &evaluator);
        let rec = space.raw_features(&config);
        for (orig, got) in record.hw_raw.iter().zip(rec) {
            log_errors.push((orig.ln() - got.ln()).abs());
        }
    }
    let mean_err = log_errors.iter().sum::<f64>() / log_errors.len() as f64;
    // Features span ~12 natural-log units; reconstruction should be far
    // better than random guessing (which would average several log units).
    assert!(
        mean_err < 1.5,
        "mean log reconstruction error too high: {mean_err}"
    );
}
