//! Regression tests for the paper's headline qualitative claims at a tiny,
//! fast scale. The experiment binaries measure these properly (see
//! EXPERIMENTS.md); these tests keep refactors from silently breaking the
//! shapes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::{Dataset, DatasetBuilder, TrainConfig, Trainer, VaesaConfig, VaesaModel};
use vaesa_repro::cosa::CachedScheduler;

fn shared_dataset() -> (DesignSpace, CachedScheduler, Dataset) {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let layers = vec![
        workloads::alexnet()[2].clone(),
        workloads::resnet50()[6].clone(),
        workloads::resnet50()[13].clone(),
        workloads::deepbench()[4].clone(),
    ];
    let ds = DatasetBuilder::new(&space, layers)
        .random_configs(120)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    (space, scheduler, ds)
}

fn train(ds: &Dataset, dz: usize, alpha: f64, epochs: usize, seed: u64) -> VaesaModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = VaesaModel::new(
        VaesaConfig::paper().with_latent_dim(dz).with_alpha(alpha),
        &mut rng,
    );
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 64,
        learning_rate: 3e-3,
    })
    .train_vae(&mut model, ds, &mut rng);
    model
}

fn recon_mse(model: &VaesaModel, ds: &Dataset) -> f64 {
    let z = model.encode_mean(&ds.hw);
    let xhat = model.decode(&z);
    xhat.sub(&ds.hw).map(|v| v * v).mean()
}

/// Figure 10's shape: more latent dimensions reconstruct better.
#[test]
fn recon_improves_with_latent_dimension() {
    let (_, _, ds) = shared_dataset();
    let m1 = train(&ds, 1, 1e-4, 25, 1);
    let m4 = train(&ds, 4, 1e-4, 25, 1);
    let r1 = recon_mse(&m1, &ds);
    let r4 = recon_mse(&m4, &ds);
    assert!(
        r4 < r1,
        "4-D latent ({r4:.5}) should reconstruct better than 1-D ({r1:.5})"
    );
}

/// Figure 9's shape: a heavy KL weight collapses the encoding spread
/// toward the standard normal relative to a light one.
#[test]
fn heavy_kl_weight_collapses_the_encoding() {
    let (_, _, ds) = shared_dataset();
    let loose = train(&ds, 2, 1e-4, 25, 2);
    let tight = train(&ds, 2, 1e-1, 25, 2);
    let spread = |m: &VaesaModel| {
        let z = m.encode_mean(&ds.hw);
        let n = z.rows() as f64;
        let mean = z.sum() / (n * 2.0);
        (z.map(|v| (v - mean) * (v - mean)).mean()).sqrt()
    };
    let s_loose = spread(&loose);
    let s_tight = spread(&tight);
    assert!(
        s_tight < s_loose,
        "alpha=0.1 spread ({s_tight:.3}) should be below alpha=1e-4 spread ({s_loose:.3})"
    );
    // And the collapsed space must sit near the prior's unit scale.
    assert!(s_tight < 2.0, "collapsed spread is {s_tight:.3}");
}

/// §IV-D's shape: predictor descent in the latent space produces better
/// designs than spending the same budget uniformly at random (averaged over
/// layers and seeds).
#[test]
fn vae_gd_beats_random_at_small_budgets() {
    use vaesa_repro::core::flows::{run_random_layer, run_vae_gd, HardwareEvaluator};
    use vaesa_repro::dse::GdConfig;

    let (space, scheduler, ds) = shared_dataset();
    let model = train(&ds, 4, 1e-4, 35, 3);
    let layers = [
        workloads::gd_test_layers()[4].clone(),
        workloads::gd_test_layers()[6].clone(),
    ];
    let samples = 8;
    let mut gd_wins = 0;
    let mut total = 0;
    for (li, layer) in layers.iter().enumerate() {
        let single = vec![layer.clone()];
        let ev = HardwareEvaluator::new(&space, &scheduler, &single);
        for seed in 0..3u64 {
            let mut r1 = ChaCha8Rng::seed_from_u64(1000 + 10 * li as u64 + seed);
            let gd = run_vae_gd(
                &ev,
                &model,
                &ds,
                layer,
                samples,
                GdConfig::default(),
                &mut r1,
            );
            let mut r2 = ChaCha8Rng::seed_from_u64(1000 + 10 * li as u64 + seed);
            let rnd = run_random_layer(&ev, &ds.hw_norm, samples, &mut r2);
            if let (Some(g), Some(r)) = (gd.best_value(), rnd.best_value()) {
                total += 1;
                if g <= r {
                    gd_wins += 1;
                }
            }
        }
    }
    assert!(total >= 5, "too few valid comparisons");
    assert!(
        gd_wins * 3 >= total * 2,
        "vae_gd won only {gd_wins}/{total} comparisons"
    );
}

/// The reconstructible property: the paper's pipeline never emits an
/// illegal configuration, whatever latent point the search visits.
#[test]
fn every_latent_point_decodes_to_a_legal_design() {
    use vaesa_repro::core::flows::{decode_to_config, latent_box, HardwareEvaluator};

    let (space, scheduler, ds) = shared_dataset();
    let model = train(&ds, 4, 1e-4, 15, 4);
    let layers = vec![workloads::alexnet()[2].clone()];
    let ev = HardwareEvaluator::new(&space, &scheduler, &layers);
    let boxed = latent_box(&model, &ds);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for _ in 0..50 {
        let z = boxed.sample(&mut rng);
        let config = decode_to_config(&model, &z, &ds.hw_norm, &ev);
        // Legality: the config indexes the space, so describe() succeeds and
        // every value is a Table II value.
        let arch = space.describe(&config);
        assert!(arch.pe_count.is_power_of_two() && (4..=64).contains(&arch.pe_count));
        assert!(arch.macs_per_pe % 64 == 0 && arch.macs_per_pe <= 4096);
    }
}
