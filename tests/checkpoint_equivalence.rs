//! A saved checkpoint must be a *drop-in replacement* for the live model:
//! the same search with the same seed must produce identical traces.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::accel::{workloads, DesignSpace};
use vaesa_repro::core::flows::{run_vae_bo, run_vae_gd, HardwareEvaluator};
use vaesa_repro::core::{
    DatasetBuilder, ModelCheckpoint, TrainConfig, Trainer, VaesaConfig, VaesaModel,
};
use vaesa_repro::cosa::CachedScheduler;
use vaesa_repro::dse::GdConfig;

#[test]
fn restored_checkpoint_reproduces_searches_exactly() {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = workloads::deepbench();
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    let dataset = DatasetBuilder::new(&space, layers.clone())
        .random_configs(50)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    let mut model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(3), &mut rng);
    Trainer::new(TrainConfig {
        epochs: 15,
        batch_size: 32,
        learning_rate: 3e-3,
    })
    .train_vae(&mut model, &dataset, &mut rng);

    // Round-trip through JSON.
    let json = ModelCheckpoint::new(&model, &dataset)
        .to_json()
        .expect("serialize");
    let (restored, _norms) = ModelCheckpoint::from_json(&json)
        .expect("deserialize")
        .into_model();

    let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);

    // vae_bo: identical traces sample for sample.
    let t_live = run_vae_bo(
        &evaluator,
        &model,
        &dataset,
        20,
        &mut ChaCha8Rng::seed_from_u64(5),
    );
    let t_restored = run_vae_bo(
        &evaluator,
        &restored,
        &dataset,
        20,
        &mut ChaCha8Rng::seed_from_u64(5),
    );
    assert_eq!(t_live.samples(), t_restored.samples());

    // vae_gd: identical descents too (exercises the predictor heads).
    let layer = layers[3].clone();
    let single = vec![layer.clone()];
    let ev1 = HardwareEvaluator::new(&space, &scheduler, &single);
    let g_live = run_vae_gd(
        &ev1,
        &model,
        &dataset,
        &layer,
        3,
        GdConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(6),
    );
    let g_restored = run_vae_gd(
        &ev1,
        &restored,
        &dataset,
        &layer,
        3,
        GdConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(6),
    );
    assert_eq!(g_live.samples(), g_restored.samples());
}

#[test]
fn checkpoint_dimension_mismatch_is_caught_on_reassembly() {
    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::default();
    let layers = vec![workloads::alexnet()[2].clone()];
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let dataset = DatasetBuilder::new(&space, layers)
        .random_configs(10)
        .grid_per_axis(0)
        .build(&scheduler, &mut rng);
    let model = VaesaModel::new(VaesaConfig::paper().with_latent_dim(2), &mut rng);
    let mut ckpt = ModelCheckpoint::new(&model, &dataset);
    // Corrupt the config so the encoder no longer matches.
    ckpt.config = ckpt.config.with_latent_dim(4);
    let result = std::panic::catch_unwind(move || ckpt.into_model());
    assert!(result.is_err(), "mismatched checkpoint must not reassemble");
}
