//! Property-based tests over the learning stack: normalization, the VAE,
//! and the search algorithms.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vaesa_repro::core::{Normalizer, VaesaConfig, VaesaModel};
use vaesa_repro::dse::{BoxSpace, FnObjective, RandomSearch, Trace};
use vaesa_repro::nn::Tensor;

fn arb_positive_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 3..12 rows of 4 positive values spanning several magnitudes.
    proptest::collection::vec(proptest::collection::vec(1e-3f64..1e9, 4), 3..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalizer round-trip is the identity (to relative 1e-6) for any
    /// positive data, and transforms of fitted rows stay within [0, 1].
    #[test]
    fn normalizer_roundtrip(rows in arb_positive_rows()) {
        let norm = Normalizer::fit(&rows);
        for row in &rows {
            let t = norm.transform_row(row);
            prop_assert!(t.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
            let back = norm.inverse_row(&t);
            for (a, b) in row.iter().zip(&back) {
                prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-12));
            }
        }
    }

    /// The VAE decoder always emits normalized features in (0, 1) — every
    /// latent point is decodable (the generative property the latent search
    /// relies on).
    #[test]
    fn decoder_output_always_normalized(
        z in proptest::collection::vec(-10.0f64..10.0, 4),
        seed in 0u64..50,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
        let out = model.decode(&Tensor::row_vector(&z));
        prop_assert_eq!(out.shape(), (1, 6));
        prop_assert!(out.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    /// Encoding is deterministic and the log-variance head stays bounded
    /// for arbitrary (even unnormalized) inputs.
    #[test]
    fn encoder_is_deterministic_and_bounded(
        x in proptest::collection::vec(-5.0f64..5.0, 6),
        seed in 0u64..50,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = VaesaModel::new(VaesaConfig::paper(), &mut rng);
        let t = Tensor::row_vector(&x);
        let (mu1, lv1) = model.encode_params(&t);
        let (mu2, lv2) = model.encode_params(&t);
        prop_assert!(mu1.approx_eq(&mu2, 0.0));
        prop_assert!(lv1.approx_eq(&lv2, 0.0));
        prop_assert!(lv1.as_slice().iter().all(|&v| v.abs() <= 4.0));
        prop_assert!(mu1.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Trace invariant: best-so-far is monotone non-increasing and equals
    /// the running minimum of the valid values, for any outcome sequence.
    #[test]
    fn trace_best_is_running_min(values in proptest::collection::vec(
        proptest::option::of(0.0f64..1e6), 1..50,
    )) {
        let mut trace = Trace::new("prop");
        let mut min_so_far: Option<f64> = None;
        for (i, v) in values.iter().enumerate() {
            trace.record(vec![i as f64], *v);
            min_so_far = match (min_so_far, v) {
                (Some(m), Some(x)) => Some(m.min(*x)),
                (Some(m), None) => Some(m),
                (None, x) => *x,
            };
            prop_assert_eq!(trace.samples()[i].best_so_far, min_so_far);
        }
        prop_assert_eq!(trace.best_value(), min_so_far);
    }

    /// Random search never returns a best value that beats the true
    /// minimum of the objective over the box.
    #[test]
    fn random_search_respects_true_minimum(seed in 0u64..100) {
        let space = BoxSpace::new(vec![-1.0, -1.0], vec![2.0, 2.0]);
        // min of (x-1)^2 + (y-1)^2 over the box is 0 at (1,1); shifted by 5.
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            Some((x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2) + 5.0)
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = RandomSearch::new(space).run(&mut obj, 30, &mut rng);
        prop_assert!(trace.best_value().expect("valid") >= 5.0);
    }
}
