//! Integration tests for the `vaesa` command-line tool: the full
//! dataset → train → search pipeline driven through the binary interface.

use std::path::PathBuf;
use std::process::Command;

fn vaesa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vaesa-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vaesa_cli_test_{name}_{}", std::process::id()))
}

#[test]
fn help_prints_usage() {
    let out = vaesa().arg("--help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dataset"));
    assert!(text.contains("search"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = vaesa().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_is_reported() {
    let out = vaesa().args(["train"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--dataset"));
}

#[test]
fn eval_scores_a_design() {
    let out = vaesa()
        .args(["eval", "--workload", "alexnet", "--pe", "16"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EDP:"));
    assert!(text.contains("latency:"));
}

#[test]
fn eval_rejects_unknown_workload() {
    let out = vaesa()
        .args(["eval", "--workload", "mystery-net"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn dataset_train_search_pipeline() {
    let ds = temp_path("ds.json");
    let model = temp_path("model.json");

    let out = vaesa()
        .args([
            "dataset",
            "--configs",
            "25",
            "--grid",
            "0",
            "--workload",
            "deepbench",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&ds)
        .output()
        .expect("run dataset");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ds.exists());

    let out = vaesa()
        .args([
            "train",
            "--latent",
            "2",
            "--epochs",
            "8",
            "--seed",
            "3",
            "--dataset",
        ])
        .arg(&ds)
        .arg("--out")
        .arg(&model)
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = vaesa()
        .args([
            "search",
            "--method",
            "vae_bo",
            "--budget",
            "15",
            "--workload",
            "deepbench",
        ])
        .arg("--model")
        .arg(&model)
        .arg("--dataset")
        .arg(&ds)
        .output()
        .expect("run search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best EDP:"), "missing summary: {text}");
    assert!(text.contains("design:"));

    let _ = std::fs::remove_file(&ds);
    let _ = std::fs::remove_file(&model);
}
