#![deny(missing_docs)]
//! Facade crate for the VAESA reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that
//! examples, integration tests, and downstream users can depend on a single
//! crate:
//!
//! - [`linalg`] — dense linear algebra and statistics ([`vaesa_linalg`]).
//! - [`nn`] — tensors, reverse-mode autodiff, MLPs, optimizers ([`vaesa_nn`]).
//! - [`accel`] — the Simba-like accelerator design space and DNN workloads
//!   ([`vaesa_accel`]).
//! - [`timeloop`] — the analytical latency/energy cost model
//!   ([`vaesa_timeloop`]).
//! - [`cosa`] — the one-shot scheduler ([`vaesa_cosa`]).
//! - [`dse`] — random/grid search, Gaussian-process Bayesian optimization,
//!   and gradient descent drivers ([`vaesa_dse`]).
//! - [`core`] — the VAESA model itself: VAE + performance predictors and the
//!   latent-space DSE flows ([`vaesa`]).
//! - [`serve`] — the DSE-as-a-service daemon: predict/decode/search over
//!   HTTP with a persistent cross-run evaluation cache ([`vaesa_serve`]).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a dataset from
//! the scheduler + cost model, train the VAE with predictor heads, and search
//! the latent space with Bayesian optimization.

pub use vaesa as core;
pub use vaesa_accel as accel;
pub use vaesa_cosa as cosa;
pub use vaesa_dse as dse;
pub use vaesa_linalg as linalg;
pub use vaesa_nn as nn;
pub use vaesa_serve as serve;
pub use vaesa_timeloop as timeloop;
