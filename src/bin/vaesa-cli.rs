//! The `vaesa-cli` command-line tool: dataset generation, training, and
//! latent-space design-space exploration from the shell.
//!
//! ```text
//! vaesa-cli dataset --configs 400 --out dataset.json
//! vaesa-cli train   --dataset dataset.json --latent 4 --alpha 1e-4 --out model.json
//! vaesa-cli search  --model model.json --dataset dataset.json \
//!                   --workload resnet50 --method vae_bo --budget 200
//! vaesa-cli eval    --pe 16 --macs 1024 --accum 32768 --weight 524288 \
//!                   --input 65536 --global 131072 --workload alexnet
//! ```
//!
//! All commands are deterministic under `--seed` and print human-readable
//! summaries; artifacts are JSON.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::process::ExitCode;
use vaesa_repro::accel::{workloads, ArchDescription, DesignSpace, LayerShape, Network};
use vaesa_repro::core::flows::{decode_to_config, HardwareEvaluator};
use vaesa_repro::core::{
    Convergence, Dataset, DatasetBuilder, DseDriver, ModelCheckpoint, SpaceMode, TrainConfig,
    Trainer, VaesaConfig, VaesaModel,
};
use vaesa_repro::cosa::CachedScheduler;
use vaesa_repro::dse::{engine_by_name, SearchOutcome};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `flow` has its own positional grammar (`flow run <name> [flags]`),
    // which the --key/value Flags parser can't express.
    if command == "flow" {
        return match cmd_flow(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `serve`, `client`, and `serve-top` likewise have their own grammars
    // (client has positional subcommands); all live in the vaesa-serve
    // crate.
    if command == "serve" || command == "client" || command == "serve-top" {
        let result = match command.as_str() {
            "serve" => vaesa_repro::serve::cli::run_serve(rest),
            "serve-top" => vaesa_repro::serve::top::run_top(rest),
            _ => vaesa_repro::serve::cli::run_client_command(rest),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Global numeric-precision override; equivalent to VAESA_PRECISION and
    // applied before any compute so every command's hot loops see it.
    match flags.0.get("precision").map(String::as_str) {
        None => {}
        Some("f64") => vaesa_repro::nn::set_precision(vaesa_repro::nn::Precision::F64),
        Some("f32") => vaesa_repro::nn::set_precision(vaesa_repro::nn::Precision::F32),
        Some(other) => {
            eprintln!("error: --precision must be f32 or f64, got `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let result = match command.as_str() {
        "dataset" => cmd_dataset(&flags),
        "train" => cmd_train(&flags),
        "search" => cmd_search(&flags),
        "eval" => cmd_eval(&flags),
        "obs-report" => cmd_obs_report(&flags),
        "obs-flame" => cmd_obs_flame(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: vaesa-cli <command> [flags]

commands:
  dataset   build a labeled dataset          --configs N --grid N --workload W --seed S --out PATH
  train     train the VAE + predictors       --dataset PATH --latent N --alpha F
                                             (--epochs N | --converge) --seed S --out PATH
  search    explore the design space         --model PATH --dataset PATH --workload W
                                             --method (vae_bo|vae_gd|vae_evo|vae_sa|bo|evo|sa|cd|random)
                                             --budget N --seed S
  eval      score one design on a workload   --pe N --macs N --accum B --weight B
                                             --input B --global B --workload W
  obs-report  summarize or diff run manifests  --manifest PATH [--diff PATH]
  obs-flame   render a trace.json flamegraph    --trace PATH [--out flame.svg]
  flow      run declarative experiment pipelines
            flow list                       every registered pipeline
            flow run NAME [--seed N --budget N --fast|--full --out DIR]
            flow graph NAME [--mermaid]     print the DAG (Graphviz DOT default)
  serve     run the DSE daemon              --addr HOST:PORT --workers N --configs N
                                            --epochs N --latent-dim N --layers N --seed S
                                            --access-log PATH
  client    query a running daemon          client [--addr HOST:PORT] <healthz|metrics
                                            |requests|request|predict|decode|search|job
                                            |shutdown> [flags]
  serve-top live dashboard over /metrics    --addr HOST:PORT [--interval-ms N]
                                            [--samples N] [--snapshot-svg PATH]

workloads: alexnet, resnet50, resnext50, deepbench, vgg16, mobilenet,
           bert, all (the Table III training pool)

global flags:
  --precision (f64|f32)   numeric backend for NN/GP hot loops (default f64;
                          same as VAESA_PRECISION; f32 uses SIMD kernels)

environment:
  VAESA_EVAL_CACHE=DIR    persist scheduler evaluations to an append-only
                          log in DIR, shared across runs and commands";

/// Minimal `--key value` flag map.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{key}`"));
            };
            if name == "converge" {
                map.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags(map))
    }

    fn str(&self, name: &str, default: &str) -> String {
        self.0
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn required(&self, name: &str) -> Result<String, String> {
        self.0
            .get(name)
            .cloned()
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.0.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} has invalid value `{v}`")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }
}

/// The `flow` command family: list, run, and render the declarative
/// experiment pipelines registered in `vaesa_bench::pipelines`.
fn cmd_flow(rest: &[String]) -> Result<(), String> {
    use vaesa_bench::pipelines;

    let Some((sub, tail)) = rest.split_first() else {
        return Err("flow needs a subcommand: list, run NAME, or graph NAME (see --help)".into());
    };
    match sub.as_str() {
        "list" => {
            for spec in pipelines::registry() {
                println!("{:<24} {}", spec.name, spec.summary);
            }
            Ok(())
        }
        "run" => {
            let Some((name, argv)) = tail.split_first() else {
                return Err("flow run needs a pipeline name (try `flow list`)".into());
            };
            let args = vaesa_bench::Args::parse_from(argv.iter().cloned())
                .map_err(|e| format!("{e}\n{}", vaesa_bench::USAGE))?;
            pipelines::run(name, args)
        }
        "graph" => {
            let Some((name, argv)) = tail.split_first() else {
                return Err("flow graph needs a pipeline name (try `flow list`)".into());
            };
            let mut mermaid = false;
            let mut bench_argv: Vec<String> = Vec::new();
            for arg in argv {
                match arg.as_str() {
                    "--mermaid" => mermaid = true,
                    "--dot" => mermaid = false,
                    other => bench_argv.push(other.to_string()),
                }
            }
            let args = vaesa_bench::Args::parse_from(bench_argv)
                .map_err(|e| format!("{e}\n{}", vaesa_bench::USAGE))?;
            let spec = pipelines::find(name)?;
            let env = pipelines::PipelineEnv::new(args);
            let graph = (spec.build)(&env)?;
            if mermaid {
                print!("{}", graph.mermaid(name));
            } else {
                print!("{}", graph.dot(name));
            }
            Ok(())
        }
        other => Err(format!(
            "unknown flow subcommand `{other}` (expected list, run, or graph)"
        )),
    }
}

fn workload_layers(name: &str) -> Result<Vec<LayerShape>, String> {
    match name {
        "alexnet" => Ok(Network::AlexNet.layers()),
        "resnet50" => Ok(Network::ResNet50.layers()),
        "resnext50" => Ok(Network::ResNext50.layers()),
        "deepbench" => Ok(Network::DeepBench.layers()),
        "vgg16" => Ok(workloads::vgg16()),
        "mobilenet" => Ok(workloads::mobilenet_v1()),
        "bert" => Ok(workloads::bert_base_gemms()),
        "all" => Ok(workloads::training_layers()),
        other => Err(format!("unknown workload `{other}` (see --help)")),
    }
}

fn cmd_dataset(flags: &Flags) -> Result<(), String> {
    let configs: usize = flags.num("configs", 400)?;
    let grid: usize = flags.num("grid", 2)?;
    let seed: u64 = flags.num("seed", 0)?;
    let out = flags.str("out", "dataset.json");
    let layers = workload_layers(&flags.str("workload", "all"))?;

    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::from_env();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    println!(
        "sampling {configs} random configs (+{grid}-per-axis grid) over {} layers...",
        layers.len()
    );
    let dataset = DatasetBuilder::new(&space, layers)
        .random_configs(configs)
        .grid_per_axis(grid)
        .build(&scheduler, &mut rng);
    println!("built {} labeled samples", dataset.len());

    let json = serde_json::to_string(&dataset).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read dataset {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("cannot parse dataset {path}: {e}"))
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let dataset = load_dataset(&flags.required("dataset")?)?;
    let latent: usize = flags.num("latent", 4)?;
    let alpha: f64 = flags.num("alpha", 1e-4)?;
    let seed: u64 = flags.num("seed", 0)?;
    let out = flags.str("out", "model.json");

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = VaesaConfig::paper()
        .with_latent_dim(latent)
        .with_alpha(alpha);
    let mut model = VaesaModel::new(config, &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: flags.num("epochs", 60)?,
        batch_size: flags.num("batch", 64)?,
        learning_rate: flags.num("lr", 1e-3)?,
    });

    println!(
        "training {latent}-D VAESA (alpha {alpha:e}) on {} samples...",
        dataset.len()
    );
    let history = if flags.has("converge") {
        trainer.train_vae_until_converged(&mut model, &dataset, Convergence::default(), &mut rng)
    } else {
        trainer.train_vae(&mut model, &dataset, &mut rng)
    };
    let last = history.last();
    println!(
        "done after {} epochs: recon {:.4}, kld {:.2}, latency {:.4}, energy {:.4}",
        history.epochs.len(),
        last.recon,
        last.kld,
        last.latency,
        last.energy
    );

    ModelCheckpoint::new(&model, &dataset)
        .save(&out)
        .map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    let ckpt = ModelCheckpoint::load(flags.required("model")?).map_err(|e| e.to_string())?;
    let dataset = load_dataset(&flags.required("dataset")?)?;
    let (model, _) = ckpt.into_model();
    let layers = workload_layers(&flags.str("workload", "resnet50"))?;
    let method = flags.str("method", "vae_bo");
    let budget: usize = flags.num("budget", 200)?;
    let seed: u64 = flags.num("seed", 0)?;

    let space = DesignSpace::paper();
    let scheduler = CachedScheduler::from_env();
    let evaluator = HardwareEvaluator::new(&space, &scheduler, &layers);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // A `vae_` prefix selects the latent space; the rest names the engine.
    let (engine_name, mode) = match method.strip_prefix("vae_") {
        Some(rest) => (rest, SpaceMode::Latent),
        None => (method.as_str(), SpaceMode::Direct),
    };
    if engine_name == "gd" && mode == SpaceMode::Direct {
        return Err("method `gd` needs trained input-space predictors; use `vae_gd`".into());
    }
    let engine = engine_by_name(engine_name).ok_or_else(|| format!("unknown method `{method}`"))?;
    // The first workload layer drives the differentiable proxy for `vae_gd`;
    // the evaluator scores the full workload either way.
    let driver = DseDriver::new(&evaluator, &dataset)
        .with_model(&model)
        .with_gd_layer(&layers[0]);

    println!("running {method} for {budget} samples (seed {seed})...");
    let trace = driver.run(engine.as_ref(), mode, budget, &mut rng);

    let outcome = SearchOutcome::of(&trace);
    let best = outcome
        .best_value
        .ok_or("no valid design found within the budget")?;
    let point = outcome.best_point.as_deref().expect("best point recorded");
    let config = match mode {
        SpaceMode::Latent => decode_to_config(&model, point, &dataset.hw_norm, &evaluator),
        SpaceMode::Direct => evaluator.snap(point, &dataset.hw_norm),
    };
    let arch = space.describe(&config);
    println!("\nbest EDP: {best:.4e} cycles*pJ");
    println!("design:   {arch}");
    if let Some(n) = outcome.samples_to_best_3pct {
        println!("reached within 3% of its best after {n} samples");
    }
    Ok(())
}

fn cmd_obs_report(flags: &Flags) -> Result<(), String> {
    use std::path::Path;
    use vaesa_xtask::manifest::Manifest;
    use vaesa_xtask::report;

    let manifest = Manifest::load(Path::new(&flags.required("manifest")?))?;
    match flags.0.get("diff") {
        None => print!("{}", report::summarize(&manifest)),
        Some(other_path) => {
            let other = Manifest::load(Path::new(other_path))?;
            match report::diff(&manifest, &other) {
                None => println!("manifests are identical"),
                Some(d) => print!("{d}"),
            }
        }
    }
    Ok(())
}

fn cmd_obs_flame(flags: &Flags) -> Result<(), String> {
    use std::path::Path;
    use vaesa_xtask::trace::ChromeTrace;

    let trace_path = flags.required("trace")?;
    let out = flags.str("out", "flame.svg");
    let trace = ChromeTrace::load(Path::new(&trace_path))?;
    trace.validate()?;
    let folded = trace.fold();
    if folded.is_empty() {
        return Err(format!("{trace_path} contains no timed spans"));
    }
    let title = Path::new(&trace_path)
        .parent()
        .and_then(|p| p.file_name())
        .map(|n| format!("{} spans", n.to_string_lossy()))
        .unwrap_or_else(|| "trace spans".to_string());
    let flame =
        vaesa_plot::FlameGraph::from_folded(title, folded.iter().map(|(k, &v)| (k.as_str(), v)));
    std::fs::write(&out, flame.render()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out} ({} span paths)", folded.len());
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let arch = ArchDescription {
        pe_count: flags.num("pe", 16u64)?,
        macs_per_pe: flags.num("macs", 1024u64)?,
        accum_buf_bytes: flags.num("accum", 32768u64)?,
        weight_buf_bytes: flags.num("weight", 524288u64)?,
        input_buf_bytes: flags.num("input", 65536u64)?,
        global_buf_bytes: flags.num("global", 131072u64)?,
    };
    let layers = workload_layers(&flags.str("workload", "resnet50"))?;
    let scheduler = CachedScheduler::from_env();
    let w = scheduler
        .schedule_workload(&arch, &layers)
        .map_err(|e| e.to_string())?;
    println!("architecture: {arch}");
    println!("latency: {:.4e} cycles", w.total_latency_cycles);
    println!("energy:  {:.4e} pJ", w.total_energy_pj);
    println!("EDP:     {:.4e}", w.edp());
    Ok(())
}
