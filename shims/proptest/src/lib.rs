//! Offline stand-in for `proptest`: a deterministic random-sampling
//! property-test harness.
//!
//! Upstream proptest adds shrinking and persistence; this shim keeps the
//! same *surface* (the `proptest!` macro, `Strategy`, `prop_map`, range and
//! tuple strategies, `collection::vec`, `prop_assert*`) but simply runs
//! each property against `ProptestConfig::cases` deterministically-seeded
//! random samples. Failures report the case number; since the RNG seed is
//! derived from the test name, failures are exactly reproducible.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A property-test failure (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary label (e.g. the test name) so
    /// every run of the same test sees the same sample sequence.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)` (rejection sampling, no modulo bias).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one random value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// A strategy producing one fixed value (mirrors proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for a `Vec` of values drawn from `elem`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: mostly `Some`, occasionally `None`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` about 4 times in 5, `None` otherwise
    /// (matching upstream's default Some-weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property-test module conventionally glob-imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides = {:?}", l);
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(::core::stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        ::core::panic!(
                            "proptest `{}` case {}/{} failed: {}",
                            ::core::stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let i = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&i));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let u = (1u64..=5).sample(&mut rng);
            assert!((1..=5).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic("vec");
        let exact = collection::vec(0f64..1.0, 7usize).sample(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..100 {
            let v = collection::vec(0u32..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("map");
        let strat = (1u64..4, 1u64..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((11..=33).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, ys in crate::collection::vec(0i32..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x as i64, -1i64);
        }
    }
}
