//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! No `syn`/`quote` (the build is offline), so this walks the raw
//! [`proc_macro::TokenStream`] directly. It supports exactly the shapes
//! this workspace derives on: non-generic structs with named fields
//! (honouring `#[serde(default)]`) and enums with unit variants. Anything
//! else panics with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    /// Struct name + (field name, has `#[serde(default)]`) pairs.
    Struct(String, Vec<(String, bool)>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// True when the attribute group tokens are `serde ( ... default ... )`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Skips attribute tokens at `i`, returning whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= attr_is_serde_default(g);
                *i += 2;
            }
            _ => break,
        }
    }
    has_default
}

/// Skips `pub` / `pub(crate)`-style visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive: `{name}` must have a braced body (tuple/unit items unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct(name, parse_fields(body)),
        "enum" => Item::Enum(name, parse_variants(body)),
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Parses `name: Type,` fields, tracking `#[serde(default)]` markers.
fn parse_fields(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let has_default = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde shim derive: expected `:` after field `{fname}` (tuple fields unsupported), got {other:?}"
            ),
        }
        // Skip the type, tracking angle-bracket depth so commas inside
        // `HashMap<K, V>` don't end the field early.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push((fname, has_default));
    }
    fields
}

/// Parses unit enum variants, rejecting data-carrying variants.
fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                panic!("serde shim derive: variant `{vname}` carries data (unsupported)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde shim derive: unexpected token after `{vname}`: {other:?}"),
        }
        variants.push(vname);
    }
    variants
}

/// `#[derive(Serialize)]` — generates `impl serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde shim derive emitted invalid Rust")
}

/// `#[derive(Deserialize)]` — generates `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|(f, has_default)| {
                    let missing = if *has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error::msg(\
                             \"missing field `{f}` in {name}\"))"
                        )
                    };
                    format!(
                        "{f}: match __v.get(\"{f}\") {{\n\
                             ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::from_value(__x)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"expected string for {name}, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde shim derive emitted invalid Rust")
}
