//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `RngCore`, `Rng::{gen_range, gen_bool}`, `SeedableRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no crates.io access, so this crate satisfies
//! the `rand = "0.8"` dependency via `[patch.crates-io]`. It is *not* a
//! re-implementation of upstream `rand`'s exact value streams — only of its
//! API and its determinism contract (same seed → same stream).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = word.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` with rejection to remove modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Accept only below the largest multiple of n, so every residue is
    // equally likely.
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $bits:literal),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Uniform in [0, 1) from the top mantissa-width bits.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f64 => 53, f32 => 24);

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place, deterministically per RNG state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 so
    /// distinct seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (Steele et al., "Fast splittable PRNGs").
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// Tiny fixed-output generator for testing the trait plumbing.
    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let u = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&u));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
