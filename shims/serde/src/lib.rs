//! Offline stand-in for `serde`: a simplified self-describing value model.
//!
//! Upstream serde decouples data structures from formats through a
//! visitor-based data model; this workspace only ever serializes plain
//! structs and unit enums to JSON, so the shim collapses the model to one
//! [`Value`] tree. `#[derive(Serialize, Deserialize)]` (from the companion
//! `serde_derive` shim) generates `to_value`/`from_value` impls, and the
//! `serde_json` shim renders/parses that tree.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the entire data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim's [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u)
                    .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error::msg(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i)
                    .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (2u32, 3.5f64);
        assert_eq!(<(u32, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn integer_widening_is_accepted() {
        // Floats holding exact integers deserialize into integer types.
        assert_eq!(u64::from_value(&Value::Float(8.0)).unwrap(), 8);
        assert!(u64::from_value(&Value::Float(8.5)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(m.get("a"), Some(&Value::UInt(1)));
        assert_eq!(m.get("b"), None);
    }
}
