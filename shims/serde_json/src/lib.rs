//! Offline stand-in for `serde_json` over the serde shim's [`Value`] model:
//! a lossless JSON emitter and a recursive-descent parser.
//!
//! Floats are rendered with Rust's shortest-roundtrip formatting (`{:?}`),
//! which satisfies the `float_roundtrip` feature contract the workspace
//! requests; non-finite floats serialize as `null` like upstream.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} gives the shortest string that round-trips exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to JSON. The shim emits compact output; the name
/// exists for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the shim's
                            // own writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via char_indices).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn float_round_trip_is_lossless() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.2250738585072014e-308, 12345.6789] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "json={s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2.5,null],"b":{"c":"x\ny","d":[]}}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, json);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_value(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k"), Some(&Value::Seq(vec![Value::UInt(1), Value::UInt(2)])));
    }

    #[test]
    fn vec_of_f64_round_trips() {
        let xs = vec![1.25, -3.5, 0.0];
        let s = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_report_position() {
        assert!(from_str::<f64>("[").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }
}
