//! Offline stand-in for `rand_chacha`, providing `ChaCha8Rng` backed by a
//! genuine ChaCha8 keystream (Bernstein's ChaCha with 8 rounds).
//!
//! The keystream layout is not guaranteed to be bit-identical to upstream
//! `rand_chacha` — nothing in this workspace depends on upstream streams —
//! but it *is* a real cryptographic-quality PRNG and is fully deterministic
//! per seed, which is the property the VAESA reproduction relies on.

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha8 = 8 rounds = 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A deterministic RNG over a ChaCha8 keystream, seeded with 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14; words 14..15 stay zero).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index within `block` (16 = exhausted).
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the keystream block for the current counter into `block`.
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn zero_rounds_blocks_differ() {
        // Consecutive blocks must differ (counter feeds the state).
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
