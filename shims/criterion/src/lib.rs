//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same calling convention (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`).
//!
//! Each benchmark is auto-calibrated (iterations per batch sized to
//! ~`BATCH_TARGET_MS`), run for several batches, and reported as the
//! *median* ns/iter on stdout. Set `VAESA_BENCH_JSON=<path>` to also
//! append one JSON line per benchmark — the repo's `BENCH_*.json`
//! baselines are produced that way. `VAESA_BENCH_MS` overrides the
//! per-benchmark measurement budget (milliseconds).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of the
/// standard hint; kept for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim sizes batches itself, so
/// the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine inputs (criterion's default guidance).
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Target wall-clock per timed batch, in milliseconds.
const BATCH_TARGET_MS: u64 = 25;

/// Timed batches per benchmark (median over these is reported).
const BATCHES: usize = 9;

/// Measurement driver handed to the benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
}

impl Bencher {
    fn measurement_budget() -> Duration {
        let ms = std::env::var("VAESA_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(BATCH_TARGET_MS * BATCHES as u64);
        Duration::from_millis(ms.max(1))
    }

    /// Times `f`, auto-calibrating iterations per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-batch iteration count until one batch
        // costs at least BATCH_TARGET_MS (or a single call already does).
        let target = Duration::from_millis(BATCH_TARGET_MS);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            // Aim directly for the target from the observed rate.
            let scale = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }

        let budget = Self::measurement_budget();
        let bench_start = Instant::now();
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
            if bench_start.elapsed() >= budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let target = Duration::from_millis(BATCH_TARGET_MS);
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 24 {
                break;
            }
            let scale = (target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }

        let budget = Self::measurement_budget();
        let bench_start = Instant::now();
        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
            if bench_start.elapsed() >= budget {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// The benchmark registry/driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and reports its median ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { median_ns: f64::NAN };
        f(&mut bencher);
        let ns = bencher.median_ns;
        let human = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        };
        println!("bench: {id:<50} {human}/iter");
        if let Ok(path) = std::env::var("VAESA_BENCH_JSON") {
            upsert_json_line(&path, id, ns);
        }
        self
    }
}

/// Writes one `{"id": ..., "ns_per_iter": ...}` line for `id`, replacing
/// any earlier line for the same id so re-running a benchmark updates its
/// baseline instead of accumulating conflicting entries.
fn upsert_json_line(path: &str, id: &str, ns: f64) {
    // Ids never contain quotes, so the quoted form matches exactly.
    let needle = format!("\"id\":\"{id}\"");
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .map(|s| {
            s.lines()
                .filter(|l| !l.trim().is_empty() && !l.contains(&needle))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    lines.push(format!("{{\"id\":\"{id}\",\"ns_per_iter\":{ns:.1}}}"));
    let mut out = lines.join("\n");
    out.push('\n');
    let _ = std::fs::write(path, out);
}

/// Declares a benchmark group function that drives each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Match criterion's CLI loosely: `--bench` etc. are accepted
            // and ignored; `--list` prints nothing and exits.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_finite_median() {
        std::env::set_var("VAESA_BENCH_MS", "10");
        let mut c = Criterion::default();
        let mut observed = f64::NAN;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.median_ns;
        });
        assert!(observed.is_finite() && observed > 0.0);
    }

    #[test]
    fn json_upsert_keeps_one_line_per_id() {
        let path = std::env::temp_dir().join("criterion_shim_upsert_test.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        upsert_json_line(path, "grp/alpha", 10.0);
        upsert_json_line(path, "grp/beta", 20.0);
        upsert_json_line(path, "grp/alpha", 30.0); // re-run: overwrite, not append
        let content = std::fs::read_to_string(path).unwrap();
        let alpha: Vec<&str> = content
            .lines()
            .filter(|l| l.contains("\"id\":\"grp/alpha\""))
            .collect();
        assert_eq!(alpha, vec!["{\"id\":\"grp/alpha\",\"ns_per_iter\":30.0}"]);
        assert_eq!(
            content
                .lines()
                .filter(|l| l.contains("\"id\":\"grp/beta\""))
                .count(),
            1
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        std::env::set_var("VAESA_BENCH_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
            assert!(b.median_ns.is_finite());
        });
    }
}
